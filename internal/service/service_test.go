package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exper"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/sim"
)

// newTestServer starts an httptest server around a Server and returns both.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts v and decodes the response into out, failing on non-200.
func postJSON(t *testing.T, url string, v any, out any) {
	t.Helper()
	body, status := postJSONStatus(t, url, v)
	if status != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %s", url, status, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("POST %s: decode response: %v\n%s", url, err, body)
	}
}

func postJSONStatus(t *testing.T, url string, v any) ([]byte, int) {
	t.Helper()
	payload, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

// table2Tasks draws perRow instances from every row of the Table 2 grid for
// both models, exactly as the engine's own acceptance test does.
func table2Tasks(t *testing.T, perRow int) []engine.Task {
	t.Helper()
	var tasks []engine.Task
	for _, cm := range model.Models() {
		for rowIdx, row := range exper.Table2Rows(cm, 1, exper.DefaultMaxPathCount) {
			for k := 0; k < perRow; k++ {
				seed := int64(rowIdx*10_000 + k + 1)
				rng := rand.New(rand.NewSource(seed))
				sp := row.Specs[k%len(row.Specs)]
				inst, err := sp.Instance(rng)
				if err != nil {
					t.Fatalf("row %q instance %d: %v", row.Label, k, err)
				}
				tasks = append(tasks, engine.Task{Inst: inst, Model: cm})
			}
		}
	}
	return tasks
}

// TestEvaluateBitIdenticalToSolverOnTable2Grid is the service acceptance
// bar: on the full Table 2 grid, /v1/evaluate must report exactly the
// rationals a direct core.Solver computes — same exact strings, same
// metadata — for every backend.
func TestEvaluateBitIdenticalToSolverOnTable2Grid(t *testing.T) {
	perRow := 2
	if testing.Short() {
		perRow = 1
	}
	tasks := table2Tasks(t, perRow)
	_, ts := newTestServer(t, Options{Workers: 4})
	solver := core.NewSolver()
	for _, backend := range []string{"auto", "karp", "howard"} {
		for i, task := range tasks {
			want, err := solver.Period(task.Inst, task.Model)
			if err != nil {
				t.Fatalf("solver task %d: %v", i, err)
			}
			var got EvaluateResponse
			postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{
				Instance: task.Inst,
				Model:    task.Model.String(),
				Backend:  backend,
			}, &got)
			if got.Period != want.Period.String() || got.Mct != want.Mct.String() {
				t.Fatalf("backend %s task %d: service (%s, %s) != solver (%s, %s)",
					backend, i, got.Period, got.Mct, want.Period, want.Mct)
			}
			if got.PathCount != want.PathCount || got.Method != string(want.Method) ||
				got.HasCritical != want.HasCriticalResource() || got.Model != want.Model.String() {
				t.Fatalf("backend %s task %d: metadata drifted: %+v vs %+v", backend, i, got, want)
			}
			if got.Throughput != want.Throughput().String() {
				t.Fatalf("backend %s task %d: throughput %s != %s", backend, i, got.Throughput, want.Throughput())
			}
		}
	}
}

// TestBatchByteIdenticalToSerialEngineOnTable2Grid pins the stronger batch
// property: the /v1/batch response bytes equal the JSON rendering of a
// serial (one-worker) engine.EvaluateBatch over the same tasks.
func TestBatchByteIdenticalToSerialEngineOnTable2Grid(t *testing.T) {
	perRow := 3
	if testing.Short() {
		perRow = 1
	}
	tasks := table2Tasks(t, perRow)
	if want := 2 * 6 * perRow; len(tasks) != want {
		t.Fatalf("grid produced %d tasks, want %d", len(tasks), want)
	}

	// Serial reference: one worker, fresh engine, index order.
	serial := engine.New(engine.Options{Workers: 1})
	outs, err := serial.EvaluateBatch(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	wantResp := BatchResponse{Backend: "auto", Outcomes: make([]BatchOutcome, len(outs))}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("serial task %d: %v", i, o.Err)
		}
		rj := resultJSON(o.Result)
		wantResp.Outcomes[i] = BatchOutcome{ResultJSON: &rj}
	}
	wantBytes, err := json.Marshal(wantResp)
	if err != nil {
		t.Fatal(err)
	}

	req := BatchRequest{Tasks: make([]BatchTask, len(tasks))}
	for i, task := range tasks {
		req.Tasks[i] = BatchTask{Instance: task.Inst, Model: task.Model.String()}
	}
	for _, workers := range []int{1, 4} {
		_, ts := newTestServer(t, Options{Workers: workers})
		body, status := postJSONStatus(t, ts.URL+"/v1/batch", req)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d, body %s", workers, status, body)
		}
		if !bytes.Equal(bytes.TrimSpace(body), wantBytes) {
			t.Fatalf("workers=%d: /v1/batch bytes differ from serial engine rendering\ngot  %s\nwant %s",
				workers, body, wantBytes)
		}
	}
}

// randomTimedInstance draws an instance with the given replication counts
// and distinct uniform times, for cache-churn workloads (the sweep's
// generator, seeded per test).
func randomTimedInstance(t testing.TB, rng *rand.Rand, reps []int) *model.Instance {
	t.Helper()
	inst, err := exper.RandomTimedInstance(rng, reps, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestServerCacheNeverExceedsConfiguredEntries is the bounded-residency
// acceptance test: a workload of 10x CacheEntries distinct instances must
// never push the memo map past the bound, and must evict.
func TestServerCacheNeverExceedsConfiguredEntries(t *testing.T) {
	const bound = 128
	s, ts := newTestServer(t, Options{Workers: 2, CacheEntries: bound})
	rng := rand.New(rand.NewSource(99))
	batch := BatchRequest{}
	for i := 0; i < 10*bound; i++ {
		batch.Tasks = append(batch.Tasks, BatchTask{
			Instance: randomTimedInstance(t, rng, []int{2, 3}),
			Model:    "overlap",
		})
		// Flush in chunks so the bound is observed repeatedly mid-workload,
		// not just at the end.
		if len(batch.Tasks) == bound || i == 10*bound-1 {
			var resp BatchResponse
			postJSON(t, ts.URL+"/v1/batch", batch, &resp)
			batch.Tasks = batch.Tasks[:0]
			m := s.engine(0).CacheMetrics()
			if m.Entries > bound {
				t.Fatalf("after %d tasks: cache holds %d entries, bound %d", i+1, m.Entries, bound)
			}
		}
	}
	m := s.engine(0).CacheMetrics()
	if m.Evictions == 0 {
		t.Fatalf("10x oversized workload produced no evictions (entries=%d)", m.Entries)
	}
	if m.Entries > bound {
		t.Fatalf("final cache holds %d entries, bound %d", m.Entries, bound)
	}
	// The /metrics endpoint reports the same counters and parses as JSON.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metricsObj struct {
		Cache map[string]struct {
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Evictions int64 `json:"evictions"`
			Entries   int64 `json:"entries"`
			Capacity  int64 `json:"capacity"`
		} `json:"cache"`
		Requests map[string]int64 `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metricsObj); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	auto := metricsObj.Cache["auto"]
	if auto.Capacity != bound || auto.Entries > bound || auto.Evictions == 0 {
		t.Fatalf("metrics cache block inconsistent: %+v", auto)
	}
	if metricsObj.Requests["batch"] == 0 {
		t.Fatal("metrics did not count batch requests")
	}
}

func TestEvaluateLatencyStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := randomTimedInstance(t, rng, []int{2, 2})
	_, ts := newTestServer(t, Options{Workers: 1})
	var got EvaluateResponse
	postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{
		Instance:       inst,
		Model:          "overlap",
		LatencyPeriods: 2,
	}, &got)
	if got.Latency == nil {
		t.Fatal("latencyPeriods=2 returned no latency block")
	}
	want, err := sim.Latency(inst, model.Overlap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Latency.Mean != want.Mean.String() || got.Latency.Min != want.Min.String() || got.Latency.Max != want.Max.String() {
		t.Fatalf("latency stats drifted: got %+v want min %s max %s mean %s",
			got.Latency, want.Min, want.Max, want.Mean)
	}
}

func TestSearchEndpointFindsSolverVerifiedMapping(t *testing.T) {
	pipe := mustPipeline(t, []int64{100, 200, 100}, []int64{50, 50})
	plat := mustPlatform(t)
	for _, algo := range []string{"best", "greedy", "random", "anneal", "exhaustive", "bnb"} {
		var got SearchResponse
		_, ts := newTestServer(t, Options{Workers: 2})
		postJSON(t, ts.URL+"/v1/search", SearchRequest{
			Pipeline: pipe,
			Platform: plat,
			Model:    "overlap",
			Algo:     algo,
			Seed:     1,
			BudgetMs: 30_000,
		}, &got)
		if got.Algo != algo || len(got.Replicas) != 3 {
			t.Fatalf("algo %s: response %+v", algo, got)
		}
		if algo == "bnb" {
			if got.Proven == nil || !*got.Proven {
				t.Fatalf("bnb on a 5-processor platform must prove its answer: %+v", got)
			}
			if got.Nodes == nil || *got.Nodes == 0 || got.Pruned == nil {
				t.Fatalf("bnb tree counts missing: %+v", got)
			}
		} else if got.Proven != nil {
			t.Fatalf("algo %s leaked a proven flag: %+v", algo, got)
		}
		// The reported period must be the period of the reported mapping.
		verifySearchResult(t, pipe, plat, got)
	}
}

// TestSearchBnbIsOptimalAndObservable: the bnb answer can only improve on
// the heuristics' (it is the proven optimum of a superset of their space),
// and the /metrics pipeline counts and times the searches like any other
// solve.
func TestSearchBnbIsOptimalAndObservable(t *testing.T) {
	pipe := mustPipeline(t, []int64{100, 200, 100}, []int64{50, 50})
	plat := mustPlatform(t)
	_, ts := newTestServer(t, Options{Workers: 2})
	var exact, best SearchResponse
	postJSON(t, ts.URL+"/v1/search", SearchRequest{
		Pipeline: pipe, Platform: plat, Model: "overlap", Algo: "bnb",
	}, &exact)
	postJSON(t, ts.URL+"/v1/search", SearchRequest{
		Pipeline: pipe, Platform: plat, Model: "overlap", Algo: "best", Seed: 7,
	}, &best)
	if exact.PeriodFloat > best.PeriodFloat {
		t.Fatalf("bnb period %s worse than heuristic best %s", exact.Period, best.Period)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Requests  map[string]int64           `json:"requests"`
		Errors    map[string]int64           `json:"errors"`
		Latency   map[string]json.RawMessage `json:"latency"`
		QueueWait map[string]json.RawMessage `json:"queueWait"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if m.Requests["search"] != 2 || m.Errors["search"] != 0 {
		t.Fatalf("search request/error counters = %d/%d, want 2/0", m.Requests["search"], m.Errors["search"])
	}
	if _, ok := m.Latency["search/auto"]; !ok {
		t.Fatalf("no search latency histogram: %v", m.Latency)
	}
	// The latency histogram times the whole handler; the time spent waiting
	// for a worker slot is broken out into its own series (keyed by endpoint
	// only — the wait precedes backend choice) so a loaded run can tell
	// queueing from solving.
	if _, ok := m.QueueWait["search"]; !ok {
		t.Fatalf("no search queue-wait histogram: %v", m.QueueWait)
	}
}

func TestSearchBudgetReturnsBestSoFar(t *testing.T) {
	pipe := mustPipeline(t, []int64{100, 200, 100}, []int64{50, 50})
	plat := mustPlatform(t)
	_, ts := newTestServer(t, Options{Workers: 2})
	var got SearchResponse
	// A 1 ms budget cannot finish the full heuristic stack, but greedy's
	// first candidates usually land; whether it errors (400, nothing found)
	// or answers, it must do so promptly and, on success, consistently.
	start := time.Now()
	body, status := postJSONStatus(t, ts.URL+"/v1/search", SearchRequest{
		Pipeline: pipe,
		Platform: plat,
		Model:    "overlap",
		Algo:     "best",
		BudgetMs: 1,
	})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("1 ms budget took %v", elapsed)
	}
	switch status {
	case http.StatusOK:
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		verifySearchResult(t, pipe, plat, got)
	case http.StatusBadRequest:
		if !strings.Contains(string(body), "budget") {
			t.Fatalf("400 without budget explanation: %s", body)
		}
	default:
		t.Fatalf("budgeted search: status %d body %s", status, body)
	}
}

func verifySearchResult(t *testing.T, pipe *pipeline.Pipeline, plat *platform.Platform, got SearchResponse) {
	t.Helper()
	mapp, err := mapping.New(got.Replicas, plat.NumProcs())
	if err != nil {
		t.Fatalf("reported mapping invalid: %v", err)
	}
	inst, err := model.FromMapped(pipe, plat, mapp)
	if err != nil {
		t.Fatalf("reported mapping unusable: %v", err)
	}
	cm, err := model.Parse(got.Model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Period(inst, cm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period.String() != got.Period {
		t.Fatalf("reported period %s, recomputed %s", got.Period, res.Period)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	var got SweepResponse
	postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Seed: 1, Pairs: [][]int{{2, 3}, {3, 4}}}, &got)
	if len(got.Points) != 2 {
		t.Fatalf("sweep returned %d points, want 2", len(got.Points))
	}
	if got.Points[0].PathCount != 6 || got.Points[1].PathCount != 12 {
		t.Fatalf("path counts %d, %d; want 6, 12", got.Points[0].PathCount, got.Points[1].PathCount)
	}
	for i, p := range got.Points {
		if p.Period == "" || p.PolyNs <= 0 {
			t.Fatalf("point %d incomplete: %+v", i, p)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3, MaxInFlight: 9})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status      string `json:"status"`
		Workers     int    `json:"workers"`
		MaxInFlight int    `json:"maxInFlight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 3 || h.MaxInFlight != 9 {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestRequestValidationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := randomTimedInstance(t, rng, []int{2, 2})
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"missing instance", "/v1/evaluate", EvaluateRequest{Model: "overlap"}, 400},
		{"latency horizon too large", "/v1/evaluate", EvaluateRequest{Instance: inst, Model: "overlap", LatencyPeriods: 1 << 30}, 400},
		{"bad model", "/v1/evaluate", EvaluateRequest{Instance: inst, Model: "both"}, 400},
		{"bad backend", "/v1/evaluate", EvaluateRequest{Instance: inst, Model: "strict", Backend: "quantum"}, 400},
		{"empty batch", "/v1/batch", BatchRequest{}, 400},
		{"batch bad task model", "/v1/batch", BatchRequest{Tasks: []BatchTask{{Instance: inst, Model: "x"}}}, 400},
		{"search missing platform", "/v1/search", SearchRequest{Model: "overlap"}, 400},
		{"search bad algo", "/v1/search", map[string]any{
			"pipeline": map[string]any{"stages": []map[string]any{{"work": 5}}, "fileSizes": []int64{}},
			"platform": map[string]any{"speeds": []int64{1}, "bandwidths": [][]int64{{0}}},
			"model":    "overlap", "algo": "oracle"}, 400},
		{"sweep empty pair", "/v1/sweep", SweepRequest{Pairs: [][]int{{}}}, 400},
		{"sweep bad replication", "/v1/sweep", SweepRequest{Pairs: [][]int{{0, 2}}}, 400},
		// 3037000500² wraps int64; the cell guard must reject the factors
		// before multiplying, not trust the wrapped sum.
		{"sweep overflowing pair", "/v1/sweep", SweepRequest{Pairs: [][]int{{3037000500, 3037000500}}}, 400},
		{"evaluate lcm overflow", "/v1/evaluate", map[string]any{"model": "overlap", "instance": overflowInstanceJSON()}, 400},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body, status := postJSONStatus(t, ts.URL+c.path, c.body)
			if status != c.status {
				t.Fatalf("status %d, want %d (body %s)", status, c.status, body)
			}
			var e struct {
				Error ErrorInfo `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" || e.Error.Code == "" {
				t.Fatalf("error body not JSON {error:{code,message}}: %s", body)
			}
		})
	}
	// Wrong method on a solve route and on the read-only routes.
	resp, err := http.Get(ts.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/evaluate: status %d, want 405", resp.StatusCode)
	}
	postBody, status := postJSONStatus(t, ts.URL+"/healthz", map[string]int{})
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status %d body %s, want 405", status, postBody)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxBodyBytes: 256})
	huge := BatchRequest{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 8; i++ {
		huge.Tasks = append(huge.Tasks, BatchTask{Instance: randomTimedInstance(t, rng, []int{2, 3}), Model: "overlap"})
	}
	body, status := postJSONStatus(t, ts.URL+"/v1/batch", huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d body %s, want 413", status, body)
	}
}

// TestFlightGroupCoalesces pins the singleflight: concurrent callers of one
// key run fn once; distinct keys run independently.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var calls atomic.Int32
	release := make(chan struct{})
	const followers = 8
	var wg sync.WaitGroup
	results := make([]core.Result, followers)
	shareds := make([]bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, shared, err := g.do(context.Background(), "k", func() (core.Result, error) {
				calls.Add(1)
				<-release
				return core.Result{PathCount: 42}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shareds[i] = res, shared
		}(i)
	}
	// Let every follower reach the flight before releasing the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	sharedCount := 0
	for i := range results {
		if results[i].PathCount != 42 {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != followers-1 {
		t.Fatalf("%d callers shared, want %d", sharedCount, followers-1)
	}
}

// TestFlightGroupLeaderCancellationDoesNotPoison: a leader dying of its own
// context must not hand followers its context error; a follower retries and
// computes.
func TestFlightGroupLeaderCancellationDoesNotPoison(t *testing.T) {
	var g flightGroup
	leaderStarted := make(chan struct{})
	leaderAbort := make(chan struct{})
	go func() {
		_, _, _ = g.do(context.Background(), "k", func() (core.Result, error) {
			close(leaderStarted)
			<-leaderAbort
			return core.Result{}, context.Canceled
		})
	}()
	<-leaderStarted
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		res, shared, err := g.do(context.Background(), "k", func() (core.Result, error) {
			return core.Result{PathCount: 7}, nil
		})
		if err != nil || shared || res.PathCount != 7 {
			t.Errorf("follower after canceled leader: res=%+v shared=%v err=%v", res, shared, err)
		}
	}()
	close(leaderAbort)
	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never recovered from canceled leader")
	}
}

// TestFlightGroupLeaderPanicDoesNotWedge: a panicking leader must
// deregister the flight — followers get a real error, the panic still
// propagates to the leader's stack, and the key works again afterwards.
func TestFlightGroupLeaderPanicDoesNotWedge(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	proceed := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		_, _, _ = g.do(context.Background(), "k", func() (core.Result, error) {
			close(started)
			<-proceed
			panic("solver blew up")
		})
	}()
	<-started
	followerErr := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), "k", func() (core.Result, error) {
			return core.Result{PathCount: 1}, nil
		})
		followerErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // give the follower a chance to join the flight
	close(proceed)
	select {
	case err := <-followerErr:
		// Either the follower joined in time and observed the sentinel, or
		// it arrived after deregistration and computed fresh (err == nil).
		// Both are fine; hanging forever is the bug this test pins.
		if err != nil && !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("follower error = %v, want nil or the panic sentinel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower wedged behind the panicked leader")
	}
	if p := <-panicked; p == nil {
		t.Fatal("leader's panic was swallowed")
	}
	// The key must be usable again.
	res, shared, err := g.do(context.Background(), "k", func() (core.Result, error) {
		return core.Result{PathCount: 5}, nil
	})
	if err != nil || shared || res.PathCount != 5 {
		t.Fatalf("post-panic call: res=%+v shared=%v err=%v", res, shared, err)
	}
}

// TestConcurrentEvaluateCoalesced sends identical concurrent requests and
// checks the server reports at least one coalesced answer when they overlap
// — and, regardless of interleaving, identical exact results.
func TestConcurrentEvaluateCoalesced(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inst := randomTimedInstance(t, rng, []int{3, 4}) // strict, m=12: slow enough to overlap
	_, ts := newTestServer(t, Options{Workers: 4, CacheEntries: -1})
	const clients = 6
	var wg sync.WaitGroup
	periods := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var got EvaluateResponse
			postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Instance: inst, Model: "strict"}, &got)
			periods[i] = got.Period
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if periods[i] != periods[0] {
			t.Fatalf("client %d period %s != client 0 period %s", i, periods[i], periods[0])
		}
	}
}

// overflowInstanceJSON builds the wire form of an instance whose replica
// counts are 16 distinct primes: lcm(m_i) exceeds int64, which used to
// panic inside JSON decode (rat.LCMAll) — in the parse phase, outside the
// solve recover — and kill the connection instead of returning 400.
func overflowInstanceJSON() map[string]any {
	primes := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53}
	ones := func(n int) []string {
		row := make([]string, n)
		for i := range row {
			row[i] = "1"
		}
		return row
	}
	comp := make([][]string, len(primes))
	for i, p := range primes {
		comp[i] = ones(p)
	}
	comm := make([][][]string, len(primes)-1)
	for i := range comm {
		comm[i] = make([][]string, primes[i])
		for a := range comm[i] {
			comm[i][a] = ones(primes[i+1])
		}
	}
	return map[string]any{"comp": comp, "comm": comm}
}

func mustPipeline(t *testing.T, work, files []int64) *pipeline.Pipeline {
	t.Helper()
	p, err := pipeline.New(work, files)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	return platform.Uniform(5, 100, 100)
}

// TestPanickingSolveDoesNotLeakCapacity is the panic-resilience regression
// test: a solve that panics must produce HTTP 500 (counted in the error
// metrics), release its in-flight slot, and leave the server serving. Before
// the fix each panic leaked one semaphore slot, so MaxInFlight panics wedged
// every solve endpoint forever.
func TestPanickingSolveDoesNotLeakCapacity(t *testing.T) {
	s := NewServer(Options{Workers: 1, MaxInFlight: 2, RequestTimeout: 2 * time.Second})
	boom := s.solveEndpoint("boom", func(r *http.Request) (reply, error) {
		return reply{solve: func(ctx context.Context) (any, error) { panic("solver blew up") }}, nil
	})
	n := 3*s.opts.MaxInFlight + 1 // well past the in-flight budget
	for i := 0; i < n; i++ {
		rec := httptest.NewRecorder()
		boom(rec, httptest.NewRequest(http.MethodPost, "/boom", strings.NewReader("{}")))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500 (body %s)", i, rec.Code, rec.Body)
		}
		var e struct {
			Error ErrorInfo `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error.Message, "panicked") {
			t.Fatalf("request %d: error body %s (decode err %v)", i, rec.Body, err)
		}
	}
	if got := s.met.inFlight.Value(); got != 0 {
		t.Fatalf("inFlight gauge %d after %d panics, want 0", got, n)
	}
	if v := s.met.errors.Get("boom"); v == nil || v.String() != fmt.Sprint(n) {
		t.Fatalf("errors counter for the panicking endpoint = %v, want %d", v, n)
	}
	// The full stack must still answer: every slot came back.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewSource(5))
	inst := randomTimedInstance(t, rng, []int{2, 2})
	var got EvaluateResponse
	postJSON(t, ts.URL+"/v1/evaluate", EvaluateRequest{Instance: inst, Model: "overlap"}, &got)
	if got.Period == "" {
		t.Fatalf("post-panic evaluate returned no period: %+v", got)
	}
}

// TestSearchFloatScreenBitIdenticalToExact is the service-level bit-identity
// gate of the float-screening tier: for every batch search algorithm, a
// request with backend "float-screen" must return exactly the response the
// exact default backend returns — same period string, same replica sets,
// and for bnb the same proven flag and tree counts. Only the screened
// counter (how the leaves were ruled out) may differ from zero.
func TestSearchFloatScreenBitIdenticalToExact(t *testing.T) {
	pipe := mustPipeline(t, []int64{100, 200, 100}, []int64{50, 50})
	plat := mustPlatform(t)
	_, ts := newTestServer(t, Options{Workers: 2})
	for _, algo := range []string{"greedy", "exhaustive", "bnb"} {
		var exact, screened SearchResponse
		req := SearchRequest{Pipeline: pipe, Platform: plat, Model: "strict", Algo: algo, Seed: 3}
		req.Backend = "auto"
		postJSON(t, ts.URL+"/v1/search", req, &exact)
		req.Backend = "float-screen"
		postJSON(t, ts.URL+"/v1/search", req, &screened)
		if screened.Backend != "float-screen" {
			t.Fatalf("algo %s: response backend %q", algo, screened.Backend)
		}
		if exact.Period != screened.Period || exact.Throughput != screened.Throughput {
			t.Fatalf("algo %s: exact period %s != screened %s", algo, exact.Period, screened.Period)
		}
		if fmt.Sprint(exact.Replicas) != fmt.Sprint(screened.Replicas) {
			t.Fatalf("algo %s: exact mapping %v != screened %v", algo, exact.Replicas, screened.Replicas)
		}
		if algo == "bnb" {
			if exact.Proven == nil || screened.Proven == nil || *exact.Proven != *screened.Proven {
				t.Fatalf("proven flag diverged: exact %v screened %v", exact.Proven, screened.Proven)
			}
			if *exact.Nodes != *screened.Nodes || *exact.Pruned != *screened.Pruned {
				t.Fatalf("tree counts diverged: nodes %d/%d pruned %d/%d",
					*exact.Nodes, *screened.Nodes, *exact.Pruned, *screened.Pruned)
			}
			if screened.Screened == nil {
				t.Fatal("bnb float-screen response missing the screened counter")
			}
			if exact.Screened != nil && *exact.Screened != 0 {
				t.Fatalf("exact-backend bnb reported %d screened leaves", *exact.Screened)
			}
		}
	}
}

// TestMetricsEnumerateFloatScreenBackend: the per-backend cache series and
// the per-endpoint/backend latency histograms are sized from
// cycles.NumBackends, so the float-screen engine must appear on /metrics
// like any other backend once a request has used it.
func TestMetricsEnumerateFloatScreenBackend(t *testing.T) {
	pipe := mustPipeline(t, []int64{100, 200, 100}, []int64{50, 50})
	plat := mustPlatform(t)
	_, ts := newTestServer(t, Options{Workers: 2})
	var got SearchResponse
	postJSON(t, ts.URL+"/v1/search", SearchRequest{
		Pipeline: pipe, Platform: plat, Model: "overlap", Algo: "greedy", Backend: "float-screen",
	}, &got)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Cache   map[string]json.RawMessage `json:"cache"`
		Latency map[string]json.RawMessage `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Cache["float-screen"]; !ok {
		t.Fatalf("no float-screen cache series: %v", m.Cache)
	}
	if _, ok := m.Latency["search/float-screen"]; !ok {
		t.Fatalf("no search/float-screen latency histogram: %v", m.Latency)
	}
}
