GO ?= go

.PHONY: all vet build test race check bench fmt

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check = everything CI runs: vet, build, tests (plain and -race), and a
# short bench smoke (one iteration per benchmark with -benchmem, so
# allocation regressions show up in the log).
check: vet build test race bench

bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem ./...

fmt:
	gofmt -l -w .
