GO ?= go

# Coverage gate: these packages hold the exact period engines, the serving
# layer and the exact search, and must stay above the floor (CI enforces it
# via `make cover`).
COVER_PKGS = ./internal/cycles ./internal/mpa ./internal/core ./internal/engine ./internal/service ./internal/bnb ./internal/sched ./internal/store ./internal/ring ./internal/cluster ./internal/jobs ./internal/checkpoint
COVER_MIN  = 75
# The job manager (PR 9) and the checkpoint store (PR 10) are durability
# keystones: they get a higher floor.
COVER_MIN_JOBS = 85

# Fuzz smoke budget per target (CI runs `make fuzz` on top of the corpus
# replay that plain `go test` already performs).
FUZZTIME ?= 10s

# Benchmarks of the perf-regression job: the period paths, the cycle-ratio
# backends, the engine batch/memoization stack and the branch-and-bound
# search (whose nodes/op + prunedPct metrics expose bounding/symmetry
# regressions as deterministic count jumps). The allocation gate
# (ALLOC_GATE, allocs/op on the strict-model Evaluate benchmarks) guards
# the PR-2 zero-allocation refactor; measured values sit at 6-7. The
# leaf-rate gate (LEAF_GATE) requires the float-screened branch and bound
# to rule out leaves at >= LEAF_GATE x the exact rate on the warm-started
# BenchmarkBnBLeafRate family; measured ratio sits around 9x. The serving
# hit-path gates guard the PR-7 content-addressed store: the by-ID
# /v1/evaluate hit path must stay at or below HITALLOC_GATE allocs/op
# (measured at 18) and run at least SPEEDUP_GATE x faster than the
# inline-instance form of the same hit (measured around 12x in-process).
# The router gate (ROUTER_GATE) guards the PR-8 cluster layer: a memoized
# by-ID hit through the cluster router's core may cost at most ROUTER_GATE x
# the same request against a single node over the same transport (the
# router's response memo keeps the measured ratio below 1x). The job-poll
# gate (JOBALLOC_GATE) guards the PR-9 async surface: one status poll plus
# one result fetch of a terminal job, end to end through the handler stack,
# must stay at or below JOBALLOC_GATE allocs/op (measured at 13). The
# checkpoint gate (CKPT_GATE) guards the PR-10 durability layer: the same
# deterministic bnb search with per-root checkpointing on may cost at most
# CKPT_GATE x the search with it off (BenchmarkCheckpointOverhead on/off in
# ns/op), or the per-root bookkeeping has grown onto the walker's hot path.
BENCH_REGRESSION = BenchmarkPeriodStrict|BenchmarkPeriodOverlapPoly|BenchmarkPeriodBackends|BenchmarkSpectralBackends|BenchmarkEngines|BenchmarkEngineBatch|BenchmarkEngineMemoization|BenchmarkBnBSearch|BenchmarkBnBLeafRate|BenchmarkServeHitPath|BenchmarkRouterHitPath|BenchmarkJobSubmitPollOverhead|BenchmarkCheckpointOverhead
ALLOC_GATE = 12
LEAF_GATE = 5
HITALLOC_GATE = 32
SPEEDUP_GATE = 4
ROUTER_GATE = 2
JOBALLOC_GATE = 32
CKPT_GATE = 1.05

.PHONY: all vet build test race check bench bench-regression cover fuzz fmt lint

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check = everything CI runs: lint, build, tests (plain and -race), the
# coverage gate, the fuzz smoke, and a short bench smoke (one iteration per
# benchmark with -benchmem, so allocation regressions show up in the log).
check: lint build test race cover fuzz bench

# lint fails on unformatted files, vet findings, and (when the binaries are
# installed — CI installs them) staticcheck and govulncheck findings.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem ./...

# bench-regression runs the period/backend/engine/bnb/serving/cluster/jobs/
# checkpoint benchmarks at a fixed iteration count, converts them to
# BENCH_10.json (uploaded as a CI artifact) and fails if the strict-model
# Evaluate allocs/op regress above ALLOC_GATE, the screened leaf rate drops
# below LEAF_GATE x exact, the by-ID serving hit path regresses above
# HITALLOC_GATE allocs/op, the by-ID/inline hit-path speedup drops below
# SPEEDUP_GATE x, the routed hit path costs more than ROUTER_GATE x the
# direct single-node hit, the async job poll path regresses above
# JOBALLOC_GATE allocs/op, or checkpointing costs the walker more than
# CKPT_GATE x the same search without it.
bench-regression:
	@status=0; $(GO) test -run xxx -bench '$(BENCH_REGRESSION)' -benchtime 100x -benchmem . ./internal/bnb ./internal/service ./internal/cluster ./internal/checkpoint > bench_regression.txt || status=$$?; \
	cat bench_regression.txt; \
	if [ "$$status" != "0" ]; then echo "bench-regression: go test failed ($$status)"; exit $$status; fi
	awk -v gate=$(ALLOC_GATE) -v leafgate=$(LEAF_GATE) -v hitgate=$(HITALLOC_GATE) -v speedupgate=$(SPEEDUP_GATE) -v routergate=$(ROUTER_GATE) -v joballocgate=$(JOBALLOC_GATE) -v ckptgate=$(CKPT_GATE) -f scripts/benchjson.awk bench_regression.txt > BENCH_10.json
	@echo "wrote BENCH_10.json ($$(grep -c '"name"' BENCH_10.json) benchmarks, alloc gate $(ALLOC_GATE), leaf-rate gate $(LEAF_GATE)x, hit-alloc gate $(HITALLOC_GATE), speedup gate $(SPEEDUP_GATE)x, router gate $(ROUTER_GATE)x, job-poll gate $(JOBALLOC_GATE), checkpoint gate $(CKPT_GATE)x)"

# cover fails when any of COVER_PKGS drops below COVER_MIN% statement
# coverage. Uses -coverprofile + `go tool cover -func` rather than grepping
# the `go test -cover` summary line, which broke on "[no statements]" /
# "[no test files]" outputs.
cover:
	@fail=0; \
	for p in $(COVER_PKGS); do \
		floor=$(COVER_MIN); \
		case $$p in ./internal/jobs|./internal/checkpoint) floor=$(COVER_MIN_JOBS);; esac; \
		tmp=$$(mktemp); \
		if ! $(GO) test -coverprofile=$$tmp $$p > /dev/null 2>&1; then \
			echo "$$p: tests failed"; fail=1; rm -f $$tmp; continue; \
		fi; \
		pct=$$($(GO) tool cover -func=$$tmp | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		rm -f $$tmp; \
		if [ -z "$$pct" ]; then echo "$$p: no coverage reported"; fail=1; continue; fi; \
		echo "$$p: $$pct% (floor $$floor%)"; \
		if [ "$$(awk -v p="$$pct" -v m=$$floor 'BEGIN{print (p+0 >= m) ? 1 : 0}')" != "1" ]; then fail=1; fi; \
	done; \
	if [ "$$fail" = "1" ]; then echo "FAIL: coverage below the floor"; exit 1; fi

# fuzz runs each native fuzz target for FUZZTIME of coverage-guided input
# generation (the committed corpora under testdata/fuzz replay in plain
# `go test` runs).
fuzz:
	$(GO) test -run xxx -fuzz FuzzPeriodBackends -fuzztime $(FUZZTIME) ./internal/core

fmt:
	gofmt -l -w .
