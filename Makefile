GO ?= go

# Coverage gate: these packages hold the exact period engines and must stay
# above the floor (CI enforces it via `make cover`).
COVER_PKGS = ./internal/cycles ./internal/mpa ./internal/core
COVER_MIN  = 75

# Fuzz smoke budget per target (CI runs `make fuzz` on top of the corpus
# replay that plain `go test` already performs).
FUZZTIME ?= 10s

.PHONY: all vet build test race check bench cover fuzz fmt

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check = everything CI runs: vet, build, tests (plain and -race), the
# coverage gate, the fuzz smoke, and a short bench smoke (one iteration per
# benchmark with -benchmem, so allocation regressions show up in the log).
check: vet build test race cover fuzz bench

bench:
	$(GO) test -run xxx -bench . -benchtime 1x -benchmem ./...

# cover fails when any of COVER_PKGS drops below COVER_MIN% statement
# coverage.
cover:
	@fail=0; \
	for p in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover $$p | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+\.[0-9]+'); \
		if [ -z "$$pct" ]; then echo "$$p: no coverage reported"; fail=1; continue; fi; \
		echo "$$p: $$pct% (floor $(COVER_MIN)%)"; \
		if [ "$$(awk -v p="$$pct" -v m=$(COVER_MIN) 'BEGIN{print (p+0 >= m) ? 1 : 0}')" != "1" ]; then fail=1; fi; \
	done; \
	if [ "$$fail" = "1" ]; then echo "FAIL: coverage below $(COVER_MIN)%"; exit 1; fi

# fuzz runs each native fuzz target for FUZZTIME of coverage-guided input
# generation (the committed corpora under testdata/fuzz replay in plain
# `go test` runs).
fuzz:
	$(GO) test -run xxx -fuzz FuzzPeriodBackends -fuzztime $(FUZZTIME) ./internal/core

fmt:
	gofmt -l -w .
