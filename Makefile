GO ?= go

.PHONY: all vet build test check bench fmt

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check = everything CI runs: vet, build, tests, and a short bench smoke
# (one iteration per benchmark, just to prove they still run).
check: vet build test bench

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

fmt:
	gofmt -l -w .
