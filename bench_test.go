package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices called out in DESIGN.md
// (cycle-ratio engine, polynomial vs unfolded-TPN computation, duplication
// scaling). EXPERIMENTS.md records the paper-vs-measured comparison; run
// with
//
//	go test -bench=. -benchmem
import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/examplesdata"
	"repro/internal/exper"
	"repro/internal/gantt"
	"repro/internal/model"
	"repro/internal/mpa"
	"repro/internal/rat"
	"repro/internal/sim"
	"repro/internal/tpn"
)

// BenchmarkTable1Paths regenerates Table 1: the round-robin paths of the
// first data sets of Example A (m = lcm(1,2,3,1) = 6 distinct paths).
func BenchmarkTable1Paths(b *testing.B) {
	mapp := examplesdata.ExampleAMapping()
	for i := 0; i < b.N; i++ {
		paths := mapp.Paths()
		if len(paths) != 6 {
			b.Fatal("wrong path count")
		}
	}
}

// BenchmarkFig2ExampleAOverlap reproduces §4.1 on Example A (Figure 2):
// overlap period 189 with the critical resource at P0's output port.
func BenchmarkFig2ExampleAOverlap(b *testing.B) {
	inst := examplesdata.ExampleA()
	for i := 0; i < b.N; i++ {
		res, err := core.PeriodOverlapPoly(inst)
		if err != nil || !res.Period.Equal(rat.FromInt(189)) {
			b.Fatalf("period %v err %v", res.Period, err)
		}
	}
}

// BenchmarkFig4OverlapTPNBuild constructs the full OVERLAP net of Figure 4
// (6x7 grid, 96 places), including validation.
func BenchmarkFig4OverlapTPNBuild(b *testing.B) {
	inst := examplesdata.ExampleA()
	for i := 0; i < b.N; i++ {
		if _, err := tpn.BuildOverlap(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5StrictTPNBuild constructs the STRICT net of Figure 5.
func BenchmarkFig5StrictTPNBuild(b *testing.B) {
	inst := examplesdata.ExampleA()
	for i := 0; i < b.N; i++ {
		if _, err := tpn.BuildStrict(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ExampleB reproduces the Example B numbers of §4.1: overlap
// Mct = 3100/12 strictly below the period 3500/12 (no critical resource).
func BenchmarkFig6ExampleB(b *testing.B) {
	inst := examplesdata.ExampleB()
	want := rat.New(3500, 12)
	for i := 0; i < b.N; i++ {
		res, err := core.PeriodOverlapPoly(inst)
		if err != nil || !res.Period.Equal(want) || res.HasCriticalResource() {
			b.Fatalf("res %+v err %v", res, err)
		}
	}
}

// BenchmarkFig7GanttExampleAStrict regenerates Figure 7: simulate the
// strict schedule of Example A and render the steady-state Gantt chart.
func BenchmarkFig7GanttExampleAStrict(b *testing.B) {
	inst := examplesdata.ExampleA()
	for i := 0; i < b.N; i++ {
		tr, err := sim.Run(inst, model.Strict, 8)
		if err != nil {
			b.Fatal(err)
		}
		if err := gantt.RenderSteadyState(io.Discard, tr, rat.FromInt(1384), 4, 2, 120); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8ExampleAStrict reproduces §4.2: the strict period 1384/6 via
// the unfolded TPN (the cross-column critical cycles of Figure 8).
func BenchmarkFig8ExampleAStrict(b *testing.B) {
	inst := examplesdata.ExampleA()
	want := rat.New(1384, 6)
	for i := 0; i < b.N; i++ {
		res, err := core.PeriodTPN(inst, model.Strict)
		if err != nil || !res.Period.Equal(want) {
			b.Fatalf("period %v err %v", res.Period, err)
		}
	}
}

// BenchmarkFig9SubTPN extracts the F1-column sub-TPN of Example A
// (Figure 9) and computes its critical cycle.
func BenchmarkFig9SubTPN(b *testing.B) {
	inst := examplesdata.ExampleA()
	net, err := tpn.BuildOverlap(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub := net.SubNetByCols(3)
		if _, err := sub.MaxCycleRatio(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10SubTPN does the same for Example B's single communication
// column (Figure 10), whose critical cycle mixes sender and receiver
// circuits and determines the whole system's period.
func BenchmarkFig10SubTPN(b *testing.B) {
	inst := examplesdata.ExampleB()
	net, err := tpn.BuildOverlap(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub := net.SubNetByCols(1)
		res, err := sub.MaxCycleRatio()
		if err != nil || !res.Ratio.Equal(rat.FromInt(3500)) {
			b.Fatalf("ratio %v err %v", res.Ratio, err)
		}
	}
}

// BenchmarkFig12GanttExampleB regenerates Figure 12: the first periods of
// Example B's overlap schedule.
func BenchmarkFig12GanttExampleB(b *testing.B) {
	inst := examplesdata.ExampleB()
	for i := 0; i < b.N; i++ {
		tr, err := sim.Run(inst, model.Overlap, 6)
		if err != nil {
			b.Fatal(err)
		}
		if err := gantt.RenderSteadyState(io.Discard, tr, rat.FromInt(3500), 2, 3, 105); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13PatternReduction exercises the Theorem 1 machinery on
// Example C (Figures 11/13/14): the F1 column decomposes into p = 3
// components of 7x9 pattern graphs although the unfolded net would need
// m = 10395 rows.
func BenchmarkFig13PatternReduction(b *testing.B) {
	inst := examplesdata.ExampleC()
	for i := 0; i < b.N; i++ {
		pat := core.NewCommPattern(inst, 1)
		if pat.P != 3 || pat.U != 7 || pat.V != 9 || pat.C != 55 {
			b.Fatalf("pattern %+v", pat)
		}
		for g := 0; g < pat.P; g++ {
			if _, err := pat.ComponentPeriodCandidate(g); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig11ExampleCFullPeriod runs the complete polynomial algorithm on
// Example C — the case the general method cannot unfold tractably.
func BenchmarkFig11ExampleCFullPeriod(b *testing.B) {
	inst := examplesdata.ExampleC()
	for i := 0; i < b.N; i++ {
		if _, err := core.PeriodOverlapPoly(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTable2Row runs a scaled-down Table 2 row (the full campaign is
// cmd/table2; these benches keep the per-row machinery honest).
func benchTable2Row(b *testing.B, cm model.CommModel, rowIdx, runs int) {
	rows := exper.Table2Rows(cm, 1, exper.DefaultMaxPathCount)
	row := rows[rowIdx]
	row.Runs = runs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exper.Run(row, int64(i+1), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 covers every row of Table 2 at reduced run counts, both
// models.
func BenchmarkTable2(b *testing.B) {
	for _, cm := range model.Models() {
		for idx, row := range exper.Table2Rows(cm, 1, exper.DefaultMaxPathCount) {
			runs := 4
			if row.Runs >= 1000 {
				runs = 20
			}
			b.Run(fmt.Sprintf("%v/%s", cm, row.Label), func(b *testing.B) {
				benchTable2Row(b, cm, idx, runs)
			})
		}
	}
}

// BenchmarkScalingDuplication measures how the evaluation cost grows with
// the duplication factor (the paper reports 2 s to 150,000 s for 10 stages
// on 20 processors, dominated by the lcm blow-up of the unfolded net). The
// polynomial algorithm's advantage over the general method is the paper's
// Theorem 1 headline.
func BenchmarkScalingDuplication(b *testing.B) {
	rng := rand.New(rand.NewSource(2009))
	for _, reps := range [][]int{
		{2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {11, 13},
	} {
		inst := randomWithReps(rng, reps, 5, 15)
		b.Run(fmt.Sprintf("poly/m=%d", inst.PathCount()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PeriodOverlapPoly(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("tpn/m=%d", inst.PathCount()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PeriodTPN(inst, model.Overlap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPeriodStrict is the acceptance benchmark of the zero-allocation
// solver refactor: one strict-model evaluation (full unfolded-TPN
// construction + critical cycle) through three paths. "fresh-solver"
// allocates a new solver context per call — what a per-call (non-reusing)
// path costs under the refactored code; the true pre-refactor free-function
// path was far heavier still (1322 allocs/op on Example A strict, see the
// before/after table in EXPERIMENTS.md). "free-function" is today's
// core.PeriodTPN, which borrows from a pool of package-default solvers;
// "reused-solver" holds one core.Solver the way each engine worker does.
// Run with -benchmem: the reused solver must show >= 10x fewer allocs/op
// than fresh-solver.
func BenchmarkPeriodStrict(b *testing.B) {
	rng := rand.New(rand.NewSource(2009))
	inst := randomWithReps(rng, []int{4, 6}, 5, 15) // m = 12, 3 columns
	want, err := core.PeriodTPN(inst, model.Strict)
	if err != nil {
		b.Fatal(err)
	}
	check := func(b *testing.B, res core.Result, err error) {
		if err != nil || !res.Period.Equal(want.Period) {
			b.Fatalf("period %v err %v", res.Period, err)
		}
	}
	b.Run("fresh-solver", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.NewSolver().PeriodTPN(inst, model.Strict)
			check(b, res, err)
		}
	})
	b.Run("free-function", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.PeriodTPN(inst, model.Strict)
			check(b, res, err)
		}
	})
	b.Run("reused-solver", func(b *testing.B) {
		b.ReportAllocs()
		s := core.NewSolver()
		for i := 0; i < b.N; i++ {
			res, err := s.PeriodTPN(inst, model.Strict)
			check(b, res, err)
		}
	})
}

// BenchmarkPeriodOverlapPoly measures the Theorem 1 polynomial path through
// a reused solver vs a fresh context per call.
func BenchmarkPeriodOverlapPoly(b *testing.B) {
	inst := examplesdata.ExampleC() // m = 10395, every pattern graph <= 7x9
	b.Run("fresh-solver", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewSolver().PeriodOverlapPoly(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused-solver", func(b *testing.B) {
		b.ReportAllocs()
		s := core.NewSolver()
		for i := 0; i < b.N; i++ {
			if _, err := s.PeriodOverlapPoly(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPeriodBackends races the two exact cycle-ratio backends — token
// contraction + Karp vs Howard policy iteration — on the strict-model
// unfolded nets of the scaling families (the workload that motivates the
// backend selection layer: Karp's contracted-graph dynamic program grows
// quadratically with the net while Howard converges in a handful of policy
// sweeps). EXPERIMENTS.md records the measured table; the acceptance bar is
// a >= 2x Howard advantage on the largest family.
func BenchmarkPeriodBackends(b *testing.B) {
	rng := rand.New(rand.NewSource(2009))
	for _, reps := range [][]int{{2, 3}, {4, 5}, {6, 7}, {8, 9}, {11, 13}, {13, 16}} {
		inst := randomWithReps(rng, reps, 5, 15)
		net, err := tpn.Build(inst, model.Strict)
		if err != nil {
			b.Fatal(err)
		}
		sys := net.System()
		var ws cycles.Workspace
		want, err := ws.MaxRatio(sys)
		if err != nil {
			b.Fatal(err)
		}
		check := func(b *testing.B, res cycles.Result, err error) {
			if err != nil || !res.Ratio.Equal(want.Ratio) {
				b.Fatalf("ratio %v err %v, want %v", res.Ratio, err, want.Ratio)
			}
		}
		b.Run(fmt.Sprintf("karp/m=%d", inst.PathCount()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ws.MaxRatio(sys)
				check(b, res, err)
			}
		})
		b.Run(fmt.Sprintf("howard/m=%d", inst.PathCount()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ws.MaxRatioHoward(sys)
				check(b, res, err)
			}
		})
	}
}

// BenchmarkSpectralBackends races the backends on the max-plus recurrence
// matrices of the scaling families — the mpa route, where every precedence
// edge carries a token, token contraction degenerates to the identity and
// Karp's dynamic program pays its full Θ(V·E) with a Θ(V²) exact table.
// This is the workload the Howard backend exists for (and what the auto
// heuristic's token-edge count routes to Howard); the acceptance bar is a
// >= 2x Howard advantage on the largest family, recorded in EXPERIMENTS.md.
func BenchmarkSpectralBackends(b *testing.B) {
	rng := rand.New(rand.NewSource(2009))
	for _, reps := range [][]int{{2, 3}, {4, 5}, {6, 7}, {8, 9}, {11, 13}} {
		inst := randomWithReps(rng, reps, 5, 15)
		net, err := tpn.Build(inst, model.Strict)
		if err != nil {
			b.Fatal(err)
		}
		a, err := mpa.FromNet(net)
		if err != nil {
			b.Fatal(err)
		}
		sys := a.PrecedenceSystem()
		var ws cycles.Workspace
		want, err := ws.MaxRatioHoward(sys)
		if err != nil {
			b.Fatal(err)
		}
		check := func(b *testing.B, res cycles.Result, err error) {
			if err != nil || !res.Ratio.Equal(want.Ratio) {
				b.Fatalf("ratio %v err %v, want %v", res.Ratio, err, want.Ratio)
			}
		}
		name := fmt.Sprintf("m=%d/V=%d/E=%d", inst.PathCount(), sys.G.N, len(sys.G.Edges))
		b.Run("karp/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ws.MaxRatio(sys)
				check(b, res, err)
			}
		})
		b.Run("howard/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ws.MaxRatioHoward(sys)
				check(b, res, err)
			}
		})
	}
}

// BenchmarkEngines ablates the three exact cycle-ratio engines on the
// Figure 10 sub-TPN system.
func BenchmarkEngines(b *testing.B) {
	inst := examplesdata.ExampleB()
	net, err := tpn.BuildOverlap(inst)
	if err != nil {
		b.Fatal(err)
	}
	sys := net.System()
	b.Run("contract+karp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.MaxRatio(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("howard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.MaxRatioHoward(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lawler-float", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.MaxRatioLawler(1e-9); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineBatch measures the batch-evaluation engine against the
// serial loop on a fixed batch of strict-model instances (each one a full
// unfolded-TPN critical-cycle computation — the heavy, uneven workload the
// work-stealing pool is built for). On a multi-core host the workers=4 run
// should complete the batch at least 2x faster than workers=1; on a
// single-core container the sub-benchmarks collapse to the same wall time,
// which is itself the determinism guarantee at work (identical results,
// identical totals). Memoization is disabled so every task is computed.
func BenchmarkEngineBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2009))
	tasks := make([]engine.Task, 32)
	for k := range tasks {
		tasks[k] = engine.Task{
			Inst:  randomWithReps(rng, []int{6, 7}, 5, 15),
			Model: model.Strict,
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tk := range tasks {
				if _, err := core.Period(tk.Inst, tk.Model); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := engine.New(engine.Options{Workers: workers, CacheEntries: -1})
			for i := 0; i < b.N; i++ {
				outs, err := eng.EvaluateBatch(context.Background(), tasks)
				if err != nil {
					b.Fatal(err)
				}
				if len(outs) != len(tasks) {
					b.Fatal("short batch")
				}
			}
		})
	}
}

// BenchmarkEngineMemoization measures the memo cache on the mapping-search
// access pattern: the same candidate instances evaluated repeatedly.
func BenchmarkEngineMemoization(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tasks := make([]engine.Task, 16)
	for k := range tasks {
		tasks[k] = engine.Task{
			Inst:  randomWithReps(rng, []int{2, 3}, 5, 15),
			Model: model.Overlap,
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.Options{Workers: 1, CacheEntries: -1})
			if _, err := eng.EvaluateBatch(context.Background(), tasks); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: 1})
		if _, err := eng.EvaluateBatch(context.Background(), tasks); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.EvaluateBatch(context.Background(), tasks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulators compares the TPN unrolling against the operational
// simulator on Example A.
func BenchmarkSimulators(b *testing.B) {
	inst := examplesdata.ExampleA()
	b.Run("tpn-unroll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(inst, model.Overlap, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("operational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunOperational(inst, model.Overlap, 60); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// randomWithReps draws an instance with the given replication counts and
// uniform integer operation times.
func randomWithReps(rng *rand.Rand, reps []int, lo, hi int64) *model.Instance {
	draw := func() rat.Rat { return rat.FromInt(lo + rng.Int63n(hi-lo+1)) }
	comp := make([][]rat.Rat, len(reps))
	for i, r := range reps {
		comp[i] = make([]rat.Rat, r)
		for a := range comp[i] {
			comp[i][a] = draw()
		}
	}
	comm := make([][][]rat.Rat, len(reps)-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for bIdx := range comm[i][a] {
				comm[i][a][bIdx] = draw()
			}
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic(err)
	}
	return inst
}
