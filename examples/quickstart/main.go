// Quickstart: build a pipeline, a heterogeneous platform and a replicated
// mapping, then compute the exact throughput under both communication
// models and inspect the per-resource cycle-times.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 4-stage workflow (cf. the paper's Figure 1): stage sizes in FLOP,
	// inter-stage file sizes in bytes.
	pipe, err := repro.NewPipeline(
		[]int64{200, 1500, 800, 300},
		[]int64{1000, 4000, 500},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Seven heterogeneous processors, complete logical interconnect.
	plat, err := repro.NewPlatform(
		[]int64{100, 80, 120, 60, 90, 110, 100}, // speeds (FLOP/s)
		[][]int64{
			{0, 500, 400, 300, 600, 500, 400},
			{500, 0, 450, 350, 550, 500, 420},
			{400, 450, 0, 380, 520, 480, 440},
			{300, 350, 380, 0, 560, 470, 410},
			{600, 550, 520, 560, 0, 530, 450},
			{500, 500, 480, 470, 530, 0, 430},
			{400, 420, 440, 410, 450, 430, 0},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Map the heavy stage S1 onto two processors and S2 onto two more:
	// replicas serve data sets round-robin.
	mapp, err := repro.NewMapping([][]int{{0}, {1, 2}, {3, 4}, {5}}, 7)
	if err != nil {
		log.Fatal(err)
	}

	inst, err := repro.NewInstance(pipe, plat, mapp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %v\nmapping:  %v\npaths:    %d (lcm of replication counts)\n\n",
		pipe, mapp, inst.PathCount())

	for _, cm := range []repro.CommModel{repro.Overlap, repro.Strict} {
		res, err := repro.Throughput(inst, cm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v model: period %v (%.4f), throughput %.6f data sets/s\n",
			cm, res.Period, res.Period.Float64(), res.Throughput().Float64())
		fmt.Printf("  lower bound Mct = %v; critical resource: %v\n",
			res.Mct, res.HasCriticalResource())
		for _, r := range repro.CriticalResources(inst, cm) {
			fmt.Printf("  busiest: %s (stage S%d)  Cin=%.3f Ccomp=%.3f Cout=%.3f\n",
				r.Name, r.Stage, r.Cin.Float64(), r.Ccomp.Float64(), r.Cout.Float64())
		}
		fmt.Println()
	}
}
