// DataCutter-style filter chain: the grid data-analysis workload of the
// papers the replication model comes from (Beynon et al.; Spencer et al.).
//
// A filter chain — read, clip, zoom, view — processes a stream of image
// tiles. The example demonstrates the paper's core phenomenon: with
// replication, adding the *bound* Mct as a performance prediction can be
// wrong, because schedules may have no critical resource. It sweeps the
// replication degree of the middle filters and reports period vs. Mct, then
// stress-tests the period under speed jitter (dynamic platforms, the
// paper's future-work direction).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Filter costs (MFLOP per tile) and tile sizes (MB).
	pipe, err := repro.NewPipeline(
		[]int64{50, 700, 900, 80},
		[]int64{60, 60, 20},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Twelve hosts with assorted speeds; uniform 100 MB/s interconnect.
	speeds := []int64{40, 70, 55, 90, 60, 45, 85, 75, 65, 50, 95, 80}
	n := len(speeds)
	bw := make([][]int64, n)
	for u := range bw {
		bw[u] = make([]int64, n)
		for v := range bw[u] {
			if u != v {
				bw[u][v] = 100
			}
		}
	}
	plat, err := repro.NewPlatform(speeds, bw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("replication sweep for the clip/zoom filters (read on P0, view on P11):")
	fmt.Printf("%-28s %12s %12s %10s %s\n", "mapping", "period", "Mct", "gap", "critical?")
	configs := []struct {
		clip, zoom []int
	}{
		{[]int{1}, []int{2}},
		{[]int{1, 2}, []int{3, 4}},
		{[]int{1, 2, 5}, []int{3, 4, 6}},
		{[]int{1, 2, 5, 7}, []int{3, 4, 6, 8}},
		{[]int{1, 2, 5, 7, 9}, []int{3, 4, 6, 8, 10}},
	}
	for _, cfg := range configs {
		mapp, err := repro.NewMapping([][]int{{0}, cfg.clip, cfg.zoom, {11}}, n)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := repro.NewInstance(pipe, plat, mapp)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Throughput(inst, repro.Overlap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.4f %12.4f %9.2f%% %v\n",
			fmt.Sprintf("clip x%d / zoom x%d", len(cfg.clip), len(cfg.zoom)),
			res.Period.Float64(), res.Mct.Float64(),
			res.Gap().Float64()*100, res.HasCriticalResource())
	}

	// Dynamic platform stress: ±15% per-operation jitter on the x3 mapping.
	mapp, _ := repro.NewMapping([][]int{{0}, {1, 2, 5}, {3, 4, 6}, {11}}, n)
	inst, _ := repro.NewInstance(pipe, plat, mapp)
	stats, err := repro.MonteCarloDynamic(inst, repro.Overlap, repro.Perturbation{JitterPct: 15}, 200, 42, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic platform (±15%% jitter, %d samples): period mean %.3f [%.3f, %.3f] σ=%.3f\n",
		stats.Runs, stats.MeanPeriod, stats.MinPeriod, stats.MaxPeriod, stats.StdDev)
	fmt.Printf("base period %.3f; samples without critical resource: %d/%d (mean gap %.2f%%)\n",
		stats.BasePeriod, stats.NoCritical, stats.Runs, stats.MeanGapPct)
}
