// Mapping search: use the exact throughput evaluator inside an optimizer.
//
// Finding the throughput-optimal mapping is NP-hard (Benoit & Robert, cited
// as [3] by the paper); this example runs the library's greedy constructor
// and randomized hill climbing against the exhaustive one-to-one optimum on
// a small heterogeneous platform, under both communication models.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	pipe, err := repro.NewPipeline(
		[]int64{120, 1400, 500, 90},
		[]int64{300, 800, 200},
	)
	if err != nil {
		log.Fatal(err)
	}
	// Nine processors; a physical star network with mixed NIC speeds.
	plat, err := repro.StarPlatform(
		[]int64{40, 120, 35, 90, 60, 110, 45, 70, 100},    // speeds
		[]int64{80, 200, 60, 150, 100, 180, 70, 120, 160}, // link capacities
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	for _, cm := range []repro.CommModel{repro.Overlap, repro.Strict} {
		fmt.Printf("=== %v model ===\n", cm)

		greedy, err := repro.FindMappingGreedy(pipe, plat, cm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("greedy:        period %10.4f  %v\n", greedy.Period.Float64(), greedy.Mapping)

		best, err := repro.FindMappingRandom(pipe, plat, cm, rng, 30, 80)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hill climbing: period %10.4f  %v\n", best.Period.Float64(), best.Mapping)

		// How much did replication buy over the best non-replicated mapping?
		inst, err := repro.NewInstance(pipe, plat, best.Mapping)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Throughput(inst, cm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("best found:    throughput %.6f data sets/s, Mct %.4f, critical resource: %v\n\n",
			res.Throughput().Float64(), res.Mct.Float64(), res.HasCriticalResource())
	}
}
