// Video encoding pipeline: the streaming workload class the paper's
// introduction motivates (video/audio encoding, DSP chains).
//
// A 6-stage H.264-style chain — demux, decode, scale, filter, encode, mux —
// processes a stream of frames on a heterogeneous cluster. Encode dominates
// the computation, so it is replicated on the three fastest machines; decode
// is replicated on two. The example compares the achieved frame rate under
// both communication models, shows that the bound Mct can be optimistic, and
// renders a steady-state Gantt chart of the port activity.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// Per-frame costs (kFLOP) and inter-stage frame sizes (kB).
	pipe, err := repro.NewPipeline(
		[]int64{20, 900, 250, 400, 2400, 60}, // demux decode scale filter encode mux
		[]int64{800, 3000, 3000, 3000, 120},  // compressed in, raw frames..., bitstream out
	)
	if err != nil {
		log.Fatal(err)
	}

	// Ten machines: three fast encoder nodes (ids 7-9), others mid-range.
	speeds := []int64{50, 60, 45, 55, 40, 50, 65, 120, 110, 100}
	n := len(speeds)
	bw := make([][]int64, n)
	for u := range bw {
		bw[u] = make([]int64, n)
		for v := range bw[u] {
			if u != v {
				bw[u][v] = 1000 // 1 GB/s switch
			}
		}
	}
	// The encoder nodes sit on a faster rack link.
	for _, u := range []int{7, 8, 9} {
		for _, v := range []int{7, 8, 9} {
			if u != v {
				bw[u][v] = 4000
			}
		}
	}
	plat, err := repro.NewPlatform(speeds, bw)
	if err != nil {
		log.Fatal(err)
	}

	mapp, err := repro.NewMapping([][]int{
		{0},       // demux
		{1, 3},    // decode, replicated x2
		{6},       // scale
		{2, 5},    // filter, replicated x2
		{7, 8, 9}, // encode, replicated x3 on the fast nodes
		{4},       // mux
	}, n)
	if err != nil {
		log.Fatal(err)
	}

	inst, err := repro.NewInstance(pipe, plat, mapp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video chain: %v\nmapping: %v\nround-robin paths: %d\n\n", pipe, mapp, inst.PathCount())

	for _, cm := range []repro.CommModel{repro.Overlap, repro.Strict} {
		res, err := repro.Throughput(inst, cm)
		if err != nil {
			log.Fatal(err)
		}
		fps := res.Throughput().Float64() * 1000 // time unit = ms at these scales
		fmt.Printf("%v model: period %.3f ms/frame  ->  %.1f fps  (Mct %.3f, critical resource: %v)\n",
			cm, res.Period.Float64(), fps, res.Mct.Float64(), res.HasCriticalResource())
	}

	// Steady-state Gantt of the overlap schedule.
	res, err := repro.Throughput(inst, repro.Overlap)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := repro.Simulate(inst, repro.Overlap, 8)
	if err != nil {
		log.Fatal(err)
	}
	tpnPeriod := res.Period.MulInt(res.PathCount)
	fmt.Printf("\nsteady-state schedule (2 periods after warm-up; digits = frame index mod 10):\n\n")
	err = repro.RenderGantt(os.Stdout, tr, repro.GanttOptions{
		From:        tpnPeriod.MulInt(4),
		To:          tpnPeriod.MulInt(6),
		Width:       120,
		PeriodMarks: tpnPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
}
