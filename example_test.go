package repro_test

// Runnable godoc examples: go test executes these verbatim, so the
// quick-start of doc.go and README.md can never drift from the code.

import (
	"context"
	"fmt"
	"math/rand"

	repro "repro"
)

// ExampleThroughput is the quick-start of the package documentation: map a
// three-stage pipeline onto a homogeneous six-processor platform with the
// middle stage replicated threefold, and compute the exact steady-state
// period under the overlap model.
func ExampleThroughput() {
	pipe, err := repro.NewPipeline([]int64{200, 1500, 800}, []int64{1000, 4000})
	if err != nil {
		panic(err)
	}
	plat := repro.UniformPlatform(6, 100, 1000)
	mapp, err := repro.NewMapping([][]int{{0}, {1, 2, 3}, {4}}, 6)
	if err != nil {
		panic(err)
	}
	inst, err := repro.NewInstance(pipe, plat, mapp)
	if err != nil {
		panic(err)
	}
	res, err := repro.Throughput(inst, repro.Overlap)
	if err != nil {
		panic(err)
	}
	fmt.Println("period:", res.Period, "Mct:", res.Mct)
	// Output:
	// period: 8 Mct: 8
}

// ExampleNewEngine evaluates a batch of (instance, model) tasks on the
// concurrent batch-evaluation engine. Outcomes arrive at the index of
// their task no matter how the worker pool interleaves, and every Result
// is bit-identical to the serial Throughput call — here the paper's
// published periods: 189 for Example A overlap (Figure 2), 3500/12 for
// Example B overlap (Figure 6) and 1384/6 for Example A strict (Figure 8),
// each in lowest terms.
func ExampleNewEngine() {
	eng := repro.NewEngine(repro.EngineOptions{Workers: 4})
	tasks := []repro.EvalTask{
		{Inst: repro.ExampleA(), Model: repro.Overlap},
		{Inst: repro.ExampleB(), Model: repro.Overlap},
		{Inst: repro.ExampleA(), Model: repro.Strict},
	}
	outs, err := eng.EvaluateBatch(context.Background(), tasks)
	if err != nil {
		panic(err)
	}
	for _, o := range outs {
		if o.Err != nil {
			panic(o.Err)
		}
		fmt.Printf("%v %v\n", o.Result.Model, o.Result.Period)
	}
	// Output:
	// overlap 189
	// overlap 875/3
	// strict 692/3
}

// ExampleEngine_SearchMappings searches for a high-throughput replicated
// mapping with every heuristic sharing the engine's memo cache.
func ExampleEngine_SearchMappings() {
	pipe, err := repro.NewPipeline([]int64{10, 400, 10}, []int64{10, 10})
	if err != nil {
		panic(err)
	}
	plat := repro.UniformPlatform(6, 10, 100)
	eng := repro.NewEngine(repro.EngineOptions{})
	best, err := eng.SearchMappings(context.Background(), pipe, plat, repro.Overlap, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	fmt.Println("period:", best.Period)
	// Output:
	// period: 10
}
