// Command mapsearch demonstrates the mapping heuristics built on the period
// evaluator: for a random heterogeneous platform, it compares the best
// one-to-one mapping (exhaustive when feasible), the greedy replicated
// mapping and randomized hill climbing — the NP-hard optimization problem
// the paper cites as motivation [3].
//
// All candidate evaluations route through the batch-evaluation engine: a
// work-stealing worker pool with a memo cache shared across the heuristics,
// so a partition revisited by a later heuristic costs a lookup. Ctrl-C
// cancels the search cleanly.
//
// Usage:
//
//	mapsearch [-stages 3] [-procs 8] [-seed 1] [-model overlap] [-restarts 20] [-workers 0] [-backend auto]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	stages := flag.Int("stages", 3, "number of stages")
	procs := flag.Int("procs", 8, "number of processors")
	seed := flag.Int64("seed", 1, "random seed")
	modelName := flag.String("model", "overlap", "communication model")
	restarts := flag.Int("restarts", 20, "hill-climbing restarts")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	backendName := flag.String("backend", "auto", "cycle-ratio backend: auto, karp or howard")
	flag.Parse()

	cm, err := model.Parse(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapsearch:", err)
		os.Exit(1)
	}
	backend, err := cycles.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapsearch:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := engine.New(engine.Options{Workers: *workers, Backend: backend})

	rng := rand.New(rand.NewSource(*seed))
	pipe := pipeline.Random(rng, *stages, 50, 500)
	plat := platform.Random(rng, *procs, 5, 25, 20, 200)
	fmt.Println("pipeline:", pipe)
	fmt.Println("speeds:  ", plat.Speeds)

	if *procs <= 10 {
		if res, err := sched.ExhaustiveOneToOneEngine(ctx, eng, pipe, plat, cm); err == nil {
			fmt.Printf("\nbest one-to-one (exhaustive): period %v (%.3f)\n  %v\n",
				res.Period, res.Period.Float64(), res.Mapping)
		} else {
			fmt.Println("\nexhaustive:", err)
		}
	}
	if res, err := sched.GreedyEngine(ctx, eng, pipe, plat, cm); err == nil {
		fmt.Printf("\ngreedy replicated: period %v (%.3f)\n  %v\n",
			res.Period, res.Period.Float64(), res.Mapping)
	} else {
		fmt.Println("\ngreedy:", err)
	}
	if res, err := sched.RandomSearchEngine(ctx, eng, pipe, plat, cm, rng, *restarts, 60); err == nil {
		fmt.Printf("\nrandom hill climbing (%d restarts): period %v (%.3f)\n  %v\n",
			*restarts, res.Period, res.Period.Float64(), res.Mapping)
	} else {
		fmt.Println("\nrandom search:", err)
	}

	hits, misses := eng.CacheStats()
	fmt.Printf("\nengine: %d workers, memo cache %d hits / %d misses (%.0f%% of evaluations reused)\n",
		eng.Workers(), hits, misses, 100*float64(hits)/float64(max(hits+misses, 1)))
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "mapsearch: interrupted")
		os.Exit(130)
	}
}
