// Command mapsearch demonstrates the mapping searches built on the period
// evaluator: for a random heterogeneous platform, it compares the best
// one-to-one mapping (exhaustive when feasible), the greedy replicated
// mapping, randomized hill climbing, and the exact branch-and-bound — the
// NP-hard optimization problem the paper cites as motivation [3], now with
// a proven optimum to judge the heuristics against.
//
// All candidate evaluations route through the batch-evaluation engine: a
// work-stealing worker pool with a memo cache shared across the searches,
// so a partition revisited by a later search costs a lookup. Ctrl-C cancels
// the search cleanly; the branch and bound then reports its best incumbent
// instead of the certificate.
//
// Usage:
//
//	mapsearch [-stages 3] [-procs 8] [-seed 1] [-model overlap] [-method all]
//	          [-restarts 20] [-workers 0] [-backend auto]
//
// -method selects one search (exhaustive, greedy, random, bnb) or "all".
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	stages := flag.Int("stages", 3, "number of stages")
	procs := flag.Int("procs", 8, "number of processors")
	seed := flag.Int64("seed", 1, "random seed")
	modelName := flag.String("model", "overlap", "communication model")
	method := flag.String("method", "all", "search to run: all, exhaustive, greedy, random or bnb")
	restarts := flag.Int("restarts", 20, "hill-climbing restarts")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	backendName := flag.String("backend", "auto", "cycle-ratio backend: auto, karp, howard or float-screen")
	flag.Parse()

	cm, err := model.Parse(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapsearch:", err)
		os.Exit(1)
	}
	backend, err := cycles.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapsearch:", err)
		os.Exit(1)
	}
	switch *method {
	case "all", "exhaustive", "greedy", "random", "bnb":
	default:
		fmt.Fprintf(os.Stderr, "mapsearch: unknown -method %q (want all, exhaustive, greedy, random or bnb)\n", *method)
		os.Exit(1)
	}
	selected := func(name string) bool { return *method == "all" || *method == name }
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := engine.New(engine.Options{Workers: *workers, Backend: backend})

	rng := rand.New(rand.NewSource(*seed))
	pipe := pipeline.Random(rng, *stages, 50, 500)
	plat := platform.Random(rng, *procs, 5, 25, 20, 200)
	fmt.Println("pipeline:", pipe)
	fmt.Println("speeds:  ", plat.Speeds)

	// With -method all the exhaustive walk is skipped quietly on platforms
	// it refuses (> 10 processors); explicitly requested, it runs and
	// reports its own refusal instead of silently doing nothing.
	if selected("exhaustive") && (*method == "exhaustive" || *procs <= 10) {
		if res, err := sched.ExhaustiveOneToOneEngine(ctx, eng, pipe, plat, cm); err == nil {
			fmt.Printf("\nbest one-to-one (exhaustive): period %v (%.3f)\n  %v\n",
				res.Period, res.Period.Float64(), res.Mapping)
		} else {
			fmt.Println("\nexhaustive:", err)
		}
	}
	if selected("greedy") {
		if res, err := sched.GreedyEngine(ctx, eng, pipe, plat, cm); err == nil {
			fmt.Printf("\ngreedy replicated: period %v (%.3f)\n  %v\n",
				res.Period, res.Period.Float64(), res.Mapping)
		} else {
			fmt.Println("\ngreedy:", err)
		}
	}
	if selected("random") {
		if res, err := sched.RandomSearchEngine(ctx, eng, pipe, plat, cm, rng, *restarts, 60); err == nil {
			fmt.Printf("\nrandom hill climbing (%d restarts): period %v (%.3f)\n  %v\n",
				*restarts, res.Period, res.Period.Float64(), res.Mapping)
		} else {
			fmt.Println("\nrandom search:", err)
		}
	}
	if selected("bnb") {
		if res, err := sched.BranchAndBoundEngine(ctx, eng, pipe, plat, cm); err == nil {
			status := "proven optimal"
			if !res.Proven {
				status = "best incumbent, search interrupted"
			}
			fmt.Printf("\nbranch and bound (%s): period %v (%.3f)\n  %v\n", status,
				res.Period, res.Period.Float64(), res.Mapping)
			fmt.Printf("  tree: %d nodes, %d leaves evaluated, %d branches pruned, %d infeasible, %d subtree roots\n",
				res.Stats.Nodes, res.Stats.Leaves, res.Stats.Pruned, res.Stats.Infeasible, res.Stats.Frontier)
		} else {
			fmt.Println("\nbranch and bound:", err)
		}
	}

	hits, misses := eng.CacheStats()
	fmt.Printf("\nengine: %d workers, memo cache %d hits / %d misses (%.0f%% of evaluations reused)\n",
		eng.Workers(), hits, misses, 100*float64(hits)/float64(max(hits+misses, 1)))
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "mapsearch: interrupted")
		os.Exit(130)
	}
}
