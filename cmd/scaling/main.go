// Command scaling regenerates the runtime-vs-duplication observation of
// Section 5 ("the computation times closely depend on the duplication
// factor of each stage"): it times the Theorem 1 polynomial algorithm
// against the general unfolded-TPN method as the replication product grows.
//
// Points run through the batch-evaluation engine; the default of one worker
// keeps the wall-time columns honest (each point times an unloaded core),
// while -workers > 1 trades timing fidelity for turnaround. Ctrl-C cancels.
//
// Usage:
//
//	scaling [-seed 2009] [-workers 1] [-backend auto]
//
// -backend selects the cycle-ratio engine (auto, karp, howard, float-screen): the sweep's
// periods are identical under every backend, but the unfolded-TPN wall-time
// column directly exposes the Karp-vs-Howard cost gap on growing nets.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/exper"
)

func main() {
	seed := flag.Int64("seed", 2009, "random seed for the instance times")
	workers := flag.Int("workers", 1, "engine worker-pool size (1 = faithful per-point timings)")
	backendName := flag.String("backend", "auto", "cycle-ratio backend: auto, karp, howard or float-screen")
	flag.Parse()

	backend, err := cycles.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := engine.New(engine.Options{Workers: *workers, Backend: backend})

	pts, err := exper.RuntimeSweepEngine(ctx, eng, *seed, exper.DefaultSweepPairs())
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}
	fmt.Println("Runtime vs duplication factor (overlap model, 2-stage instances)")
	if err := exper.WriteSweep(os.Stdout, pts); err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}
}
