// Command scaling regenerates the runtime-vs-duplication observation of
// Section 5 ("the computation times closely depend on the duplication
// factor of each stage"): it times the Theorem 1 polynomial algorithm
// against the general unfolded-TPN method as the replication product grows.
//
// Usage:
//
//	scaling [-seed 2009]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exper"
)

func main() {
	seed := flag.Int64("seed", 2009, "random seed for the instance times")
	flag.Parse()
	pts, err := exper.RuntimeSweep(*seed, exper.DefaultSweepPairs())
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}
	fmt.Println("Runtime vs duplication factor (overlap model, 2-stage instances)")
	if err := exper.WriteSweep(os.Stdout, pts); err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}
}
