// Command gantt renders the ASCII Gantt chart of a built-in example's
// steady-state schedule — the textual counterpart of the paper's Figure 7
// (Example A, strict model) and Figure 12 (Example B, overlap model).
//
// Usage:
//
//	gantt -example A -model strict [-periods 2] [-skip 4] [-width 140]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/examplesdata"
	"repro/internal/gantt"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	example := flag.String("example", "A", "built-in example: A or B")
	modelName := flag.String("model", "strict", "communication model: overlap or strict")
	periods := flag.Int("periods", 2, "number of TPN periods to draw")
	skip := flag.Int("skip", 4, "TPN periods to skip (transient)")
	width := flag.Int("width", 140, "chart width in characters")
	flag.Parse()

	var inst *model.Instance
	switch *example {
	case "A", "a":
		inst = examplesdata.ExampleA()
	case "B", "b":
		inst = examplesdata.ExampleB()
	default:
		fmt.Fprintf(os.Stderr, "gantt: unknown example %q\n", *example)
		os.Exit(1)
	}
	cm, err := model.Parse(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gantt:", err)
		os.Exit(1)
	}

	res, err := core.Period(inst, cm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gantt:", err)
		os.Exit(1)
	}
	tpnPeriod := res.Period.MulInt(res.PathCount)
	tr, err := sim.Run(inst, cm, *skip+*periods+2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gantt:", err)
		os.Exit(1)
	}
	fmt.Printf("Example %s, %v model: period %v per data set (TPN period %v, m = %d)\n",
		*example, cm, res.Period, tpnPeriod, res.PathCount)
	if res.HasCriticalResource() {
		fmt.Println("A critical resource exists: one row below is always busy.")
	} else {
		fmt.Printf("No critical resource (Mct = %v < P): every row idles.\n", res.Mct)
	}
	fmt.Printf("Cells show the data-set index mod 10; one '|' ruler mark per TPN period.\n\n")
	if err := gantt.RenderSteadyState(os.Stdout, tr, tpnPeriod, *skip, *periods, *width); err != nil {
		fmt.Fprintln(os.Stderr, "gantt:", err)
		os.Exit(1)
	}
}
