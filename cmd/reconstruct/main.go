// Command reconstruct recovers the concrete numeric instances of the paper's
// Examples A and B by constraint solving against every number the paper
// reports (see package repro/internal/reconstruct). It prints all solutions.
package main

import (
	"fmt"

	"repro/internal/reconstruct"
)

func main() {
	fmt.Println("Searching Example B (19 labels in {100,1000}, seven 1000s)...")
	bs := reconstruct.SearchExampleB()
	fmt.Printf("Example B: %d solution(s)\n", len(bs))
	for i, s := range bs {
		fmt.Printf("  B[%d]: comp=%v links=%v\n", i, s.Comp, s.T)
	}
	fmt.Println("Searching Example A (18 labels of Figure 2)...")
	as := reconstruct.SearchExampleA()
	fmt.Printf("Example A: %d solution(s)\n", len(as))
	for i, s := range as {
		fmt.Printf("  A[%d]: comp=%v t01=%d t02=%d T1=%v T2=%v T6=%v\n",
			i, s.Comp, s.T01, s.T02, s.T1, s.T2, s.T6)
	}
}
