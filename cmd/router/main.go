// Command router fronts N serve nodes as one logical server: a
// consistent-hash cluster router exposing the identical /v1/* surface.
// Single-instance requests route to the instance's home node (by content
// ID, so by-ID and inline forms share caches); /v1/batch and /v1/sweep
// scatter by per-task home node and gather answers in submission order,
// byte-identical to a single node. A health prober ejects dead nodes from
// the ring (requests fail over to ring successors) and rejoins them when
// they recover; by-ID misses after a failover are healed by replaying the
// registration from the router's bounded cache.
//
// Usage:
//
//	router -nodes URL[=WEIGHT],URL[=WEIGHT],... [-addr :8090]
//	       [-vnodes 128] [-probe-interval 500ms] [-eject-after 3]
//	       [-rejoin-after 2] [-retries 2] [-timeout 60s]
//	       [-replay-entries 4096] [-respmemo-entries 8192]
//
// -nodes lists the serve processes to shard across (required); an optional
// =WEIGHT per node scales its key share (default 1). -vnodes sets ring
// points per weight unit. -retries bounds failover hops past a key's home
// node. -replay-entries bounds the registration-replay cache and
// -respmemo-entries the router's response memo (negative disables it).
//
// Example:
//
//	serve -addr :8081 & serve -addr :8082 & serve -addr :8083 &
//	router -addr :8090 -nodes http://localhost:8081,http://localhost:8082,http://localhost:8083
//	curl -s localhost:8090/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed
		}
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until ctx is canceled. Like cmd/serve, the
// "listening on" line goes to stderr so tests can bind ":0" and discover
// the port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("router", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8090", "listen address (host:port; :0 picks a free port)")
	nodeList := fs.String("nodes", "", "comma-separated serve node URLs, each optionally URL=WEIGHT (required)")
	vnodes := fs.Int("vnodes", 0, "ring virtual nodes per weight unit (0 = default 128)")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "health-probe cadence per node")
	ejectAfter := fs.Int("eject-after", 3, "consecutive probe failures before a node is ejected from the ring")
	rejoinAfter := fs.Int("rejoin-after", 2, "consecutive probe successes before an ejected node rejoins")
	retries := fs.Int("retries", 2, "failover hops past a key's home node (negative disables failover)")
	timeout := fs.Duration("timeout", 60*time.Second, "per-proxied-request wall-clock ceiling")
	replayEntries := fs.Int("replay-entries", 0, "registration-replay cache bound (0 = default 4096)")
	respEntries := fs.Int("respmemo-entries", 0, "router response-memo bound (0 = default 8192, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	nodes, err := parseNodes(*nodeList)
	if err != nil {
		return err
	}
	opts := cluster.Options{
		Nodes:           nodes,
		Vnodes:          *vnodes,
		ProbeInterval:   *probeInterval,
		EjectAfter:      *ejectAfter,
		RejoinAfter:     *rejoinAfter,
		Retries:         *retries,
		RequestTimeout:  *timeout,
		ReplayEntries:   *replayEntries,
		RespMemoEntries: *respEntries,
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	if err := cluster.Serve(ctx, *addr, opts, logf); err != nil {
		return err
	}
	fmt.Fprintln(stderr, "shutdown complete")
	return nil
}

// parseNodes parses the -nodes list: "URL,URL=3,URL". The URL doubles as
// the node's ring name, so ownership is stable across router restarts as
// long as the URL set is.
func parseNodes(list string) ([]cluster.Node, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("-nodes is required (comma-separated serve URLs)")
	}
	var nodes []cluster.Node
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("-nodes holds an empty entry")
		}
		n := cluster.Node{Weight: 1}
		if url, w, ok := strings.Cut(part, "="); ok {
			weight, err := strconv.Atoi(w)
			if err != nil || weight < 1 {
				return nil, fmt.Errorf("bad node weight in %q (want URL=positive-integer)", part)
			}
			n.URL, n.Weight = url, weight
		} else {
			n.URL = part
		}
		if !strings.HasPrefix(n.URL, "http://") && !strings.HasPrefix(n.URL, "https://") {
			return nil, fmt.Errorf("node URL %q must start with http:// or https://", n.URL)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}
