package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

// syncBuffer lets the test read stderr while run() writes it from another
// goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestParseNodes(t *testing.T) {
	nodes, err := parseNodes("http://a:1,http://b:2=3, http://c:3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.Node{
		{URL: "http://a:1", Weight: 1},
		{URL: "http://b:2", Weight: 3},
		{URL: "http://c:3", Weight: 1},
	}
	if len(nodes) != len(want) {
		t.Fatalf("parsed %d nodes, want %d", len(nodes), len(want))
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("node %d = %+v, want %+v", i, nodes[i], want[i])
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing nodes", nil, "-nodes is required"},
		{"empty entry", []string{"-nodes", "http://a:1,,http://b:2"}, "empty entry"},
		{"bad weight", []string{"-nodes", "http://a:1=zero"}, "bad node weight"},
		{"bad scheme", []string{"-nodes", "localhost:8081"}, "must start with http"},
		{"positional args", []string{"-nodes", "http://a:1", "extra"}, "unexpected arguments"},
		{"bad flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), c.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error()+stderr.String(), c.want) {
				t.Fatalf("run(%v) error %q, want %q", c.args, err, c.want)
			}
		})
	}
}

var listenLine = regexp.MustCompile(`listening on ([^\s]+)`)

// TestRouterLifecycle boots two in-process serve nodes and the real router
// binary path on a free port, proxies one evaluation through it, checks
// the cluster health view, and expects a clean logged shutdown.
func TestRouterLifecycle(t *testing.T) {
	n1 := httptest.NewServer(service.NewServer(service.Options{}).Handler())
	defer n1.Close()
	n2 := httptest.NewServer(service.NewServer(service.Options{}).Handler())
	defer n2.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout bytes.Buffer
	stderr := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-nodes", n1.URL + "," + n2.URL + "=2",
			"-probe-interval", "50ms",
		}, &stdout, stderr)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("router never reported its address; stderr: %s", stderr.String())
		}
		if m := listenLine.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health cluster.HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.RingNodes) != 2 {
		t.Fatalf("healthz = %+v", health)
	}
	var weights []int
	for _, n := range health.Nodes {
		weights = append(weights, n.Weight)
	}
	if (weights[0] == 2) == (weights[1] == 2) {
		t.Fatalf("exactly one node should carry weight 2: %+v", health.Nodes)
	}

	body := `{"model":"overlap","instance":{"comp":[["4","4"],["3"]],"comm":[[["2"],["2"]]]}}`
	resp, err = http.Post("http://"+addr+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	var eval struct {
		Period string `json:"period"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eval); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || eval.Period == "" {
		t.Fatalf("evaluate: status %d, %+v", resp.StatusCode, eval)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("router did not shut down after cancel")
	}
	if !strings.Contains(stderr.String(), "shutdown complete") {
		t.Fatalf("no shutdown log; stderr: %s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("stdout should stay clean, got %q", stdout.String())
	}
}
