// Command throughput computes the steady-state period, throughput, resource
// cycle-times and critical resources of a replicated-workflow instance.
//
// Usage:
//
//	throughput -example A|B|C [-model overlap|strict|both] [-backend auto]
//	throughput -instance file.json [-model overlap|strict|both] [-backend auto]
//
// The JSON instance format is:
//
//	{
//	  "pipeline": {"stages": [{"work": 200}, ...], "fileSizes": [1000, ...]},
//	  "platform": {"speeds": [...], "bandwidths": [[...], ...]},
//	  "mapping":  {"replicas": [[0], [1,2], ...]}
//	}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/examplesdata"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
)

type instanceFile struct {
	Pipeline pipeline.Pipeline `json:"pipeline"`
	Platform platform.Platform `json:"platform"`
	Mapping  mapping.Mapping   `json:"mapping"`
}

func main() {
	example := flag.String("example", "", "built-in example: A, B or C")
	path := flag.String("instance", "", "JSON instance file")
	modelName := flag.String("model", "both", "communication model: overlap, strict or both")
	analyze := flag.Bool("analyze", false, "full report: critical cycle, utilization, slack, stream periods (unfolds the TPN)")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	backendName := flag.String("backend", "auto", "cycle-ratio backend: auto, karp, howard or float-screen")
	flag.Parse()

	backend, err := cycles.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
	inst, err := loadInstance(*example, *path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
	var models []model.CommModel
	switch *modelName {
	case "overlap":
		models = []model.CommModel{model.Overlap}
	case "strict":
		models = []model.CommModel{model.Strict}
	case "both":
		models = model.Models()
	default:
		fmt.Fprintf(os.Stderr, "throughput: unknown model %q\n", *modelName)
		os.Exit(1)
	}

	fmt.Printf("stages: %d   paths (lcm of replication): %d   max duplication: %d\n",
		inst.NumStages(), inst.PathCount(), inst.MaxReplication())

	// Both models are independent period computations: evaluate them as one
	// engine batch (the analyze path needs the full report and stays serial).
	var outs []engine.Outcome
	if !*analyze {
		eng := engine.New(engine.Options{Workers: *workers, Backend: backend})
		tasks := make([]engine.Task, len(models))
		for k, cm := range models {
			tasks[k] = engine.Task{Inst: inst, Model: cm}
		}
		var err error
		outs, err = eng.EvaluateBatch(context.Background(), tasks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "throughput:", err)
			os.Exit(1)
		}
	}

	for k, cm := range models {
		if *analyze {
			rep, err := core.Analyze(inst, cm)
			if err != nil {
				fmt.Fprintf(os.Stderr, "throughput: %v model: %v\n", cm, err)
				os.Exit(1)
			}
			fmt.Printf("\n=== %v model — full analysis ===\n", cm)
			if err := rep.Write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "throughput:", err)
				os.Exit(1)
			}
			continue
		}
		res, err := outs[k].Result, outs[k].Err
		if err != nil {
			fmt.Fprintf(os.Stderr, "throughput: %v model: %v\n", cm, err)
			os.Exit(1)
		}
		fmt.Printf("\n=== %v model (method %s) ===\n", cm, res.Method)
		fmt.Printf("period      P   = %v (= %.4f)\n", res.Period, res.Period.Float64())
		fmt.Printf("throughput  1/P = %v (= %.6f data sets / time unit)\n", res.Throughput(), res.Throughput().Float64())
		fmt.Printf("bound       Mct = %v (= %.4f)\n", res.Mct, res.Mct.Float64())
		if res.HasCriticalResource() {
			fmt.Println("critical resource: YES (period = Mct)")
		} else {
			fmt.Printf("critical resource: NO — all resources idle each period (gap %.2f%%)\n",
				res.Gap().Float64()*100)
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "proc\tstage\tCin\tCcomp\tCout\tCexec")
		for _, r := range inst.Resources() {
			marker := ""
			if r.Cexec(cm).Equal(res.Mct) {
				marker = "  <- Mct"
			}
			fmt.Fprintf(tw, "%s\tS%d\t%.3f\t%.3f\t%.3f\t%.3f%s\n",
				r.Name, r.Stage, r.Cin.Float64(), r.Ccomp.Float64(), r.Cout.Float64(),
				r.Cexec(cm).Float64(), marker)
		}
		tw.Flush()
	}
}

func loadInstance(example, path string) (*model.Instance, error) {
	switch {
	case example != "" && path != "":
		return nil, fmt.Errorf("use either -example or -instance, not both")
	case example != "":
		switch example {
		case "A", "a":
			return examplesdata.ExampleA(), nil
		case "B", "b":
			return examplesdata.ExampleB(), nil
		case "C", "c":
			return examplesdata.ExampleC(), nil
		default:
			return nil, fmt.Errorf("unknown example %q (want A, B or C)", example)
		}
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var f instanceFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return model.FromMapped(&f.Pipeline, &f.Platform, &f.Mapping)
	default:
		return nil, fmt.Errorf("need -example or -instance (see -h)")
	}
}
