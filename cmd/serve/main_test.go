package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read stderr while run() writes it from another
// goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad backend", []string{"-backend", "quantum"}, "unknown backend"},
		{"positional args", []string{"-addr", ":0", "extra"}, "unexpected arguments"},
		{"bad flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), c.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", c.args, c.want)
			}
			if !strings.Contains(err.Error()+stderr.String(), c.want) {
				t.Fatalf("run(%v) error %q, want %q", c.args, err, c.want)
			}
		})
	}
}

var listenLine = regexp.MustCompile(`listening on ([^\s]+)`)

// TestServeLifecycle boots the real server on a free port, hits /healthz
// and /v1/evaluate over real HTTP, then cancels the context and expects a
// clean, logged shutdown — the end-to-end path of cmd/serve.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout bytes.Buffer
	stderr := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-cache-entries", "64", "-backend", "howard"}, &stdout, stderr)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; stderr: %s", stderr.String())
		}
		if m := listenLine.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Workers != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	// One real evaluation; the -backend default (howard) must serve it.
	body := `{"model":"overlap","instance":{"comp":[["4","4"],["3"]],"comm":[[["2"],["2"]]]}}`
	resp, err = http.Post("http://"+addr+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	var eval struct {
		Period  string `json:"period"`
		Backend string `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eval); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || eval.Period == "" {
		t.Fatalf("evaluate: status %d, %+v", resp.StatusCode, eval)
	}
	if eval.Backend != "howard" {
		t.Fatalf("evaluate served by backend %q, want the -backend default howard", eval.Backend)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down after cancel")
	}
	if !strings.Contains(stderr.String(), "shutdown complete") {
		t.Fatalf("no shutdown log; stderr: %s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("stdout should stay clean, got %q", stdout.String())
	}
}
