// Command serve runs the batched-evaluation HTTP service: the full solver
// surface — /v1/evaluate, /v1/batch, /v1/search, /v1/sweep — plus /healthz
// and /metrics, behind a bounded memo cache and an in-flight worker budget.
// Ctrl-C (or SIGTERM from an orchestrator) drains in-flight requests and
// exits cleanly.
//
// Usage:
//
//	serve [-addr :8080] [-workers 0] [-cache-entries 0] [-inflight 0]
//	      [-timeout 60s] [-maxrows 0] [-backend auto]
//	      [-store-entries 0] [-respmemo-entries 0]
//	      [-job-entries 0] [-job-active 0] [-job-timeout 0]
//	      [-checkpoint-dir DIR] [-checkpoint-interval 2s]
//
// -workers sizes each backend's engine pool (0 = GOMAXPROCS).
// -cache-entries bounds each engine's memo cache (0 = default 32768,
// negative disables memoization). -inflight caps concurrent solve requests
// (0 = 2x workers). -backend sets the cycle-ratio engine used by requests
// that do not name one; every backend returns identical exact results.
// -store-entries bounds the content-addressed instance store behind
// POST /v1/instances (0 = default 4096). -respmemo-entries bounds the
// encoded-response memo that serves repeat evaluate hits without touching
// a solver or encoder (0 = default 8192, negative disables). -job-entries
// bounds retained terminal async jobs (0 = default 1024), -job-active caps
// concurrently running async jobs (0 = default 256) and -job-timeout sets
// the per-job wall-clock ceiling (0 = default 15m). -checkpoint-dir makes
// async jobs durable: every submission, per-root search progress and final
// result persists there (atomic write-rename), and on restart the server
// rehydrates finished jobs and resumes interrupted ones before listening —
// a resumed deterministic search re-executes only its unfinished subtree
// roots and answers byte-identically. -checkpoint-interval batches the
// per-root writes (0 = write every finished root).
//
// Example:
//
//	serve -addr :8080 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/evaluate -d '{
//	  "model": "strict",
//	  "instance": {"comp": [["4","4"], ["3"]],
//	               "comm": [[["2"], ["2"]]]}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cycles"
	"repro/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed
		}
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until ctx is canceled. The "listening on"
// line goes to stderr (stdout stays clean for tooling that wraps the
// server), so tests can bind ":0" and discover the port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	workers := fs.Int("workers", 0, "engine worker-pool size per backend (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", 0, "memo-cache bound per backend engine (0 = default, negative disables)")
	inflight := fs.Int("inflight", 0, "max concurrent solve requests (0 = 2x workers)")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request wall-clock ceiling")
	maxRows := fs.Int("maxrows", 0, "unfolded-TPN row cap of the pooled solvers (0 = package default)")
	backendName := fs.String("backend", "auto", "default cycle-ratio backend for requests that omit one: auto, karp, howard or float-screen")
	storeEntries := fs.Int("store-entries", 0, "instance-store bound for POST /v1/instances (0 = default 4096)")
	respEntries := fs.Int("respmemo-entries", 0, "encoded-response memo bound (0 = default 8192, negative disables)")
	jobEntries := fs.Int("job-entries", 0, "terminal-job retention bound for /v1/jobs (0 = default 1024)")
	jobActive := fs.Int("job-active", 0, "max concurrently active async jobs (0 = default 256)")
	jobTimeout := fs.Duration("job-timeout", 0, "wall-clock ceiling per async job (0 = default 15m)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for durable job checkpoints (empty disables; restart resumes interrupted jobs)")
	ckptInterval := fs.Duration("checkpoint-interval", 2*time.Second, "min delay between per-root checkpoint writes of a running search (0 = write every root)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	backend, err := cycles.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	opts := service.Options{
		Workers:            *workers,
		CacheEntries:       *cacheEntries,
		MaxRows:            *maxRows,
		MaxInFlight:        *inflight,
		RequestTimeout:     *timeout,
		DefaultBackend:     backend,
		StoreEntries:       *storeEntries,
		RespCacheEntries:   *respEntries,
		JobEntries:         *jobEntries,
		JobActive:          *jobActive,
		JobTimeout:         *jobTimeout,
		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptInterval,
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	if err := service.Serve(ctx, *addr, opts, logf); err != nil {
		return err
	}
	fmt.Fprintln(stderr, "shutdown complete")
	return nil
}
