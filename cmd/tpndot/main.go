// Command tpndot emits Graphviz DOT for the timed Petri nets of the paper's
// examples — the machine-generated counterparts of Figures 4, 5, 9 and 10.
//
// Usage:
//
//	tpndot -example A -model overlap            # full net (Figure 4)
//	tpndot -example A -model strict             # full net (Figure 5)
//	tpndot -example A -model overlap -col 3     # F1 sub-TPN (Figure 9)
//	tpndot -example B -model overlap -col 1     # F0 sub-TPN (Figure 10)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/examplesdata"
	"repro/internal/model"
	"repro/internal/tpn"
)

func main() {
	example := flag.String("example", "A", "built-in example: A, B or C")
	modelName := flag.String("model", "overlap", "communication model: overlap or strict")
	col := flag.Int("col", -1, "restrict to one TPN column (-1 = full net)")
	flag.Parse()

	var inst *model.Instance
	switch *example {
	case "A", "a":
		inst = examplesdata.ExampleA()
	case "B", "b":
		inst = examplesdata.ExampleB()
	case "C", "c":
		inst = examplesdata.ExampleC()
	default:
		fmt.Fprintf(os.Stderr, "tpndot: unknown example %q\n", *example)
		os.Exit(1)
	}
	var cm model.CommModel
	switch *modelName {
	case "overlap":
		cm = model.Overlap
	case "strict":
		cm = model.Strict
	default:
		fmt.Fprintf(os.Stderr, "tpndot: unknown model %q\n", *modelName)
		os.Exit(1)
	}
	net, err := tpn.Build(inst, cm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpndot:", err)
		os.Exit(1)
	}
	title := fmt.Sprintf("example %s %v", *example, cm)
	if *col >= 0 {
		net = net.SubNetByCols(*col)
		title += fmt.Sprintf(" col %d", *col)
	}
	st := net.Stats()
	fmt.Fprintf(os.Stderr, "net: %d transitions, %d places, %d tokens\n",
		st.Transitions, st.Places, st.Tokens)
	if err := net.WriteDOT(os.Stdout, title); err != nil {
		fmt.Fprintln(os.Stderr, "tpndot:", err)
		os.Exit(1)
	}
}
