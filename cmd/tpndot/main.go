// Command tpndot emits Graphviz DOT for the timed Petri nets of the paper's
// examples — the machine-generated counterparts of Figures 4, 5, 9 and 10.
//
// Usage:
//
//	tpndot -example A -model overlap            # full net (Figure 4)
//	tpndot -example A -model strict             # full net (Figure 5)
//	tpndot -example A -model overlap -col 3     # F1 sub-TPN (Figure 9)
//	tpndot -example B -model overlap -col 1     # F0 sub-TPN (Figure 10)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/examplesdata"
	"repro/internal/model"
	"repro/internal/tpn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed
		}
		fmt.Fprintln(os.Stderr, "tpndot:", err)
		os.Exit(1)
	}
}

// run emits the DOT for the given arguments. The DOT itself is the only
// stdout output (the net stats line goes to stderr), so stdout is
// byte-deterministic for a fixed flag set — the property the golden-file
// test pins.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tpndot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	example := fs.String("example", "A", "built-in example: A, B or C")
	modelName := fs.String("model", "overlap", "communication model: overlap or strict")
	col := fs.Int("col", -1, "restrict to one TPN column (-1 = full net)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var inst *model.Instance
	switch *example {
	case "A", "a":
		inst = examplesdata.ExampleA()
	case "B", "b":
		inst = examplesdata.ExampleB()
	case "C", "c":
		inst = examplesdata.ExampleC()
	default:
		return fmt.Errorf("unknown example %q", *example)
	}
	cm, err := model.Parse(*modelName)
	if err != nil {
		return err
	}
	net, err := tpn.Build(inst, cm)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("example %s %v", *example, cm)
	if *col >= 0 {
		net = net.SubNetByCols(*col)
		title += fmt.Sprintf(" col %d", *col)
	}
	st := net.Stats()
	fmt.Fprintf(stderr, "net: %d transitions, %d places, %d tokens\n",
		st.Transitions, st.Places, st.Tokens)
	return net.WriteDOT(stdout, title)
}
