package main

// Golden-file test: the DOT bytes on stdout are pinned for the four
// figure-generating invocations of the command. Run with -update to
// regenerate testdata after an intentional rendering change.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestGoldenDOT(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"exampleA-overlap", []string{"-example", "A", "-model", "overlap"}},
		{"exampleA-strict", []string{"-example", "A", "-model", "strict"}},
		{"exampleA-overlap-col3", []string{"-example", "A", "-model", "overlap", "-col", "3"}},
		{"exampleB-overlap-col1", []string{"-example", "B", "-model", "overlap", "-col", "1"}},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(c.args, &stdout, &stderr); err != nil {
				t.Fatalf("run %v: %v\nstderr: %s", c.args, err, stderr.String())
			}
			path := filepath.Join("testdata", c.golden+".golden")
			if *update {
				if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./cmd/tpndot -update` to create)", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output differs from %s (rerun with -update after an intentional change)\ngot %d bytes, want %d",
					path, stdout.Len(), len(want))
			}
		})
	}
}
