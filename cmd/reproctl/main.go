// Command reproctl is the admin CLI for a running serve node (or a
// cmd/router front end — every command speaks the public HTTP surface, so
// pointing -url at a router administers the whole cluster): inspect and
// cancel async jobs, dump the metrics and health snapshots, and drain the
// job queue before a restart.
//
// Usage:
//
//	reproctl -url http://localhost:8080 <command> [args]
//
// Commands:
//
//	jobs [-kind search|sweep] [-state pending|running|done|failed|canceled]
//	        list jobs, optionally filtered
//	job [-follow] [-interval 500ms] <id>
//	        show one job's status and live progress; -follow polls until
//	        the job reaches a terminal state, printing a line whenever the
//	        state or progress changes, and exits nonzero if it failed
//	result <id>
//	        print a finished job's result body (raw JSON, exactly the
//	        bytes the synchronous endpoint would have answered)
//	cancel <id>
//	        request cooperative cancellation; prints the job's status
//	drain [-wait 30s]
//	        cancel every pending and running job, then wait until none
//	        remain active
//	metrics
//	        dump the /metrics snapshot (cache, store, response memo, jobs)
//	health
//	        dump the /healthz snapshot
//
// Every failure is reported through the service's unified error envelope:
// reproctl decodes {"error":{code,message}} and exits nonzero with
// "code: message".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed
		}
		fmt.Fprintln(os.Stderr, "reproctl:", err)
		os.Exit(1)
	}
}

// client is the admin connection: base URL plus the HTTP client every
// command goes through.
type client struct {
	base string
	http *http.Client
}

// run parses the global flags, dispatches the subcommand and writes its
// output to stdout. Errors (usage, transport, server refusals) are
// returned, not printed, so tests can assert on them.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("reproctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseURL := fs.String("url", "", "base URL of the serve node or router (required)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request ceiling")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: reproctl -url URL <command> [args]")
		fmt.Fprintln(stderr, "commands: jobs, job <id>, result <id>, cancel <id>, drain, metrics, health")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseURL == "" {
		return fmt.Errorf("-url is required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("missing command (want jobs, job, result, cancel, drain, metrics or health)")
	}
	c := &client{base: strings.TrimRight(*baseURL, "/"), http: &http.Client{Timeout: *timeout}}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "jobs":
		return c.cmdJobs(ctx, rest, stdout, stderr)
	case "job":
		return c.cmdJob(ctx, rest, stdout, stderr)
	case "result":
		if len(rest) != 1 {
			return fmt.Errorf("usage: reproctl result <id>")
		}
		return c.cmdResult(ctx, rest[0], stdout)
	case "cancel":
		if len(rest) != 1 {
			return fmt.Errorf("usage: reproctl cancel <id>")
		}
		return c.cmdCancel(ctx, rest[0], stdout)
	case "drain":
		return c.cmdDrain(ctx, rest, stdout, stderr)
	case "metrics":
		return c.dump(ctx, "/metrics", stdout)
	case "health":
		return c.dump(ctx, "/healthz", stdout)
	default:
		return fmt.Errorf("unknown command %q (want jobs, job, result, cancel, drain, metrics or health)", cmd)
	}
}

// do sends one request and returns the body of a success answer. A non-2xx
// answer is decoded through the unified error envelope and turned into an
// error ("code: message"), falling back to the raw body for non-envelope
// answers (a proxy in the path, a panic page).
func (c *client) do(ctx context.Context, method, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb service.ErrorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error.Message != "" {
			return nil, fmt.Errorf("%s: %s", eb.Error.Code, eb.Error.Message)
		}
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// dump passes a snapshot endpoint's body through verbatim.
func (c *client) dump(ctx context.Context, path string, stdout io.Writer) error {
	body, err := c.do(ctx, http.MethodGet, path)
	if err != nil {
		return err
	}
	_, err = stdout.Write(body)
	return err
}

// listJobs fetches one filtered listing.
func (c *client) listJobs(ctx context.Context, kind, state string) (service.JobListResponse, error) {
	path := "/v1/jobs"
	q := make([]string, 0, 2)
	if kind != "" {
		q = append(q, "kind="+kind)
	}
	if state != "" {
		q = append(q, "state="+state)
	}
	if len(q) > 0 {
		path += "?" + strings.Join(q, "&")
	}
	var list service.JobListResponse
	body, err := c.do(ctx, http.MethodGet, path)
	if err != nil {
		return list, err
	}
	if err := json.Unmarshal(body, &list); err != nil {
		return list, fmt.Errorf("malformed job listing: %v", err)
	}
	return list, nil
}

// cmdJobs lists jobs as a fixed-width table: one row per job, the listing
// order (sorted by ID) preserved.
func (c *client) cmdJobs(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("reproctl jobs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "", "filter by kind: search or sweep")
	state := fs.String("state", "", "filter by state: pending, running, done, failed or canceled")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	list, err := c.listJobs(ctx, *kind, *state)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-22s %-7s %-9s %s\n", "ID", "KIND", "STATE", "PROGRESS")
	for _, j := range list.Jobs {
		fmt.Fprintf(stdout, "%-22s %-7s %-9s %s\n", j.ID, j.Kind, j.State, progressLine(j))
	}
	fmt.Fprintf(stdout, "%d job(s)\n", len(list.Jobs))
	return nil
}

// progressLine compresses a job's progress block to one cell.
func progressLine(j service.Job) string {
	p := j.Progress
	if p == nil {
		return "-"
	}
	if p.PointsTotal != nil {
		var done int64
		if p.PointsDone != nil {
			done = *p.PointsDone
		}
		return fmt.Sprintf("points %d/%d", done, *p.PointsTotal)
	}
	if p.Nodes != nil {
		line := fmt.Sprintf("nodes %d", *p.Nodes)
		if p.Leaves != nil {
			line += fmt.Sprintf(" leaves %d", *p.Leaves)
		}
		if p.Pruned != nil {
			line += fmt.Sprintf(" pruned %d", *p.Pruned)
		}
		return line
	}
	return "-"
}

// cmdJob prints one job's status document, indented. With -follow it polls
// the status route until the job turns terminal instead, emitting one line
// per observed change (state transitions and progress-counter movement) and
// then the terminal document; a failed job makes the command exit nonzero,
// so scripts can gate on it ("submit && reproctl job -follow $id && fetch").
func (c *client) cmdJob(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("reproctl job", flag.ContinueOnError)
	fs.SetOutput(stderr)
	follow := fs.Bool("follow", false, "poll until the job reaches a terminal state")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval with -follow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: reproctl job [-follow] [-interval 500ms] <id>")
	}
	id := fs.Arg(0)
	if !*follow {
		body, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id)
		if err != nil {
			return err
		}
		return writeIndented(stdout, body)
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive (got %v)", *interval)
	}
	return c.followJob(ctx, id, *interval, stdout)
}

// followJob is the -follow loop: poll, print deltas, stop on a terminal
// state. Lines repeat only when something changed, so a quiet job costs no
// output while a running search streams its counter movement.
func (c *client) followJob(ctx context.Context, id string, interval time.Duration, stdout io.Writer) error {
	last := ""
	for {
		body, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id)
		if err != nil {
			return err
		}
		var j service.Job
		if err := json.Unmarshal(body, &j); err != nil {
			return fmt.Errorf("malformed job status: %v", err)
		}
		if line := fmt.Sprintf("%-9s %s", j.State, progressLine(j)); line != last {
			fmt.Fprintf(stdout, "%s %s\n", j.ID, line)
			last = line
		}
		switch j.State {
		case "done", "failed", "canceled":
			if err := writeIndented(stdout, body); err != nil {
				return err
			}
			if j.State == "failed" {
				if j.Error != nil {
					return fmt.Errorf("job %s failed: %s: %s", id, j.Error.Code, j.Error.Message)
				}
				return fmt.Errorf("job %s failed", id)
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
}

// cmdResult prints a finished job's result verbatim — the exact bytes the
// synchronous endpoint would have answered, suitable for piping.
func (c *client) cmdResult(ctx context.Context, id string, stdout io.Writer) error {
	body, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result")
	if err != nil {
		return err
	}
	_, err = stdout.Write(body)
	return err
}

// cmdCancel requests cancellation and prints the job's resulting status.
func (c *client) cmdCancel(ctx context.Context, id string, stdout io.Writer) error {
	body, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id)
	if err != nil {
		return err
	}
	return writeIndented(stdout, body)
}

// cmdDrain cancels every pending and running job, then polls until no job
// remains active (or -wait expires). Terminal jobs are untouched — drain
// stops work, it does not clear history.
func (c *client) cmdDrain(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("reproctl drain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wait := fs.Duration("wait", 30*time.Second, "how long to wait for active jobs to stop")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	canceled := 0
	for _, state := range []string{"pending", "running"} {
		list, err := c.listJobs(ctx, "", state)
		if err != nil {
			return err
		}
		for _, j := range list.Jobs {
			if _, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+j.ID); err != nil {
				return fmt.Errorf("canceling %s: %v", j.ID, err)
			}
			canceled++
		}
	}
	deadline := time.Now().Add(*wait)
	for {
		active := 0
		for _, state := range []string{"pending", "running"} {
			list, err := c.listJobs(ctx, "", state)
			if err != nil {
				return err
			}
			active += len(list.Jobs)
		}
		if active == 0 {
			fmt.Fprintf(stdout, "drained: %d job(s) canceled, none active\n", canceled)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("drain: %d job(s) still active after %v", active, *wait)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// writeIndented re-indents a JSON body for human eyes. The raw bytes are
// already a complete document; indentation is display-only.
func writeIndented(stdout io.Writer, body []byte) error {
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		_, werr := stdout.Write(body)
		return werr
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
