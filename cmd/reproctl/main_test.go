package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/service"
)

func startServer(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(service.NewServer(service.Options{Workers: 2}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// ctl runs one reproctl invocation and returns stdout.
func ctl(t *testing.T, url string, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	all := append([]string{"-url", url}, args...)
	if err := run(context.Background(), all, &stdout, &stderr); err != nil {
		t.Fatalf("reproctl %v: %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.String()
}

// ctlErr runs one reproctl invocation that must fail and returns the error.
func ctlErr(t *testing.T, args ...string) error {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), args, &stdout, &stderr)
	if err == nil {
		t.Fatalf("reproctl %v: expected an error, got stdout %q", args, stdout.String())
	}
	return err
}

func searchBody(t *testing.T, algo string, seed int64) []byte {
	t.Helper()
	pipe, err := pipeline.New([]int64{100, 200, 100}, []int64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(service.SearchRequest{
		Pipeline: pipe, Platform: platform.Uniform(5, 100, 100),
		Model: "overlap", Algo: algo, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestReproctlUsageErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"jobs"}, "-url is required"},
		{[]string{"-url", "http://x"}, "missing command"},
		{[]string{"-url", "http://x", "teleport"}, "unknown command"},
		{[]string{"-url", "http://x", "job"}, "usage: reproctl job [-follow] [-interval 500ms] <id>"},
		{[]string{"-url", "http://x", "job", "-follow", "-interval", "-1s", "x-1"}, "-interval must be positive"},
		{[]string{"-url", "http://x", "result", "a", "b"}, "usage: reproctl result <id>"},
		{[]string{"-url", "http://x", "cancel"}, "usage: reproctl cancel <id>"},
	}
	for _, c := range cases {
		if err := ctlErr(t, c.args...); !strings.Contains(err.Error(), c.want) {
			t.Fatalf("args %v: error %v, want containing %q", c.args, err, c.want)
		}
	}
}

// TestReproctlJobLifecycle drives the whole admin surface against one
// server: a synchronous search leaves a terminal job behind, which the CLI
// lists, inspects and fetches — the result command printing exactly the
// bytes the synchronous endpoint answered.
func TestReproctlJobLifecycle(t *testing.T) {
	url := startServer(t)
	body := searchBody(t, "greedy", 1)
	resp, err := http.Post(url+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	syncBytes, status := readAll(t, resp)
	if status != http.StatusOK {
		t.Fatalf("sync search: status %d body %s", status, syncBytes)
	}

	table := ctl(t, url, "jobs")
	if !strings.Contains(table, "search-1") || !strings.Contains(table, "done") || !strings.Contains(table, "1 job(s)") {
		t.Fatalf("jobs table:\n%s", table)
	}
	if filtered := ctl(t, url, "jobs", "-kind", "sweep"); !strings.Contains(filtered, "0 job(s)") {
		t.Fatalf("kind filter leaked:\n%s", filtered)
	}

	one := ctl(t, url, "job", "search-1")
	if !strings.Contains(one, `"state": "done"`) || !strings.Contains(one, `"kind": "search"`) {
		t.Fatalf("job output:\n%s", one)
	}

	if got := ctl(t, url, "result", "search-1"); got != string(syncBytes) {
		t.Fatalf("result bytes differ from the synchronous answer:\n%q\nvs\n%q", got, syncBytes)
	}

	if err := ctlErr(t, "-url", url, "result", "nope-9"); !strings.Contains(err.Error(), "unknown_job") {
		t.Fatalf("unknown job error = %v", err)
	}
}

func readAll(t *testing.T, resp *http.Response) ([]byte, int) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

// TestReproctlCancelAndDrain submits a deliberately huge exact search
// asynchronously, cancels it via drain, and checks the job lands in the
// canceled state with drain reporting the count.
func TestReproctlCancelAndDrain(t *testing.T) {
	url := startServer(t)
	work := make([]int64, 14)
	files := make([]int64, 13)
	for i := range work {
		work[i] = int64(100 + 37*i)
	}
	for i := range files {
		files[i] = int64(40 + 11*i)
	}
	pipe, err := pipeline.New(work, files)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := json.Marshal(service.JobSubmitRequest{Kind: "search", Search: &service.SearchRequest{
		Pipeline: pipe, Platform: platform.Uniform(56, 100, 100),
		Model: "overlap", Algo: "bnb",
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(sub))
	if err != nil {
		t.Fatal(err)
	}
	body, status := readAll(t, resp)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", status, body)
	}
	var j service.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}

	out := ctl(t, url, "drain", "-wait", "30s")
	if !strings.Contains(out, "1 job(s) canceled, none active") {
		t.Fatalf("drain output %q", out)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		one := ctl(t, url, "job", j.ID)
		if strings.Contains(one, `"state": "canceled"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached canceled:\n%s", one)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Draining an idle server is a no-op that still succeeds.
	if out := ctl(t, url, "drain"); !strings.Contains(out, "0 job(s) canceled") {
		t.Fatalf("idle drain output %q", out)
	}
}

// TestReproctlJobFollow drives the -follow loop over a real async search:
// the command must stream at least one status line, stop on the terminal
// state, and print the terminal document. A failed job (budget expiry)
// must make the command return an error — the nonzero exit scripts gate on.
func TestReproctlJobFollow(t *testing.T) {
	url := startServer(t)
	work := make([]int64, 8)
	files := make([]int64, 7)
	for i := range work {
		work[i] = int64(100 + 37*i)
	}
	for i := range files {
		files[i] = int64(40 + 11*i)
	}
	pipe, err := pipeline.New(work, files)
	if err != nil {
		t.Fatal(err)
	}
	submit := func(base string) service.Job {
		t.Helper()
		sub, err := json.Marshal(service.JobSubmitRequest{Kind: "search", Search: &service.SearchRequest{
			Pipeline: pipe, Platform: platform.Uniform(16, 100, 100),
			Model: "overlap", Algo: "bnb",
		}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(sub))
		if err != nil {
			t.Fatal(err)
		}
		body, status := readAll(t, resp)
		if status != http.StatusAccepted {
			t.Fatalf("submit: status %d body %s", status, body)
		}
		var j service.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		return j
	}

	j := submit(url)
	out := ctl(t, url, "job", "-follow", "-interval", "5ms", j.ID)
	if !strings.Contains(out, j.ID) || !strings.Contains(out, `"state": "done"`) {
		t.Fatalf("follow output:\n%s", out)
	}

	// A server whose per-job ceiling is one nanosecond fails every detached
	// job before its solve starts: -follow must propagate the failure as an
	// error — the nonzero exit scripts gate on.
	tsf := httptest.NewServer(service.NewServer(service.Options{Workers: 2, JobTimeout: time.Nanosecond}).Handler())
	t.Cleanup(tsf.Close)
	jf := submit(tsf.URL)
	err = ctlErr(t, "-url", tsf.URL, "job", "-follow", "-interval", "5ms", jf.ID)
	if !strings.Contains(err.Error(), "failed") {
		t.Fatalf("follow of failed job: error %v, want mention of failure", err)
	}
}

func TestReproctlSnapshots(t *testing.T) {
	url := startServer(t)
	health := ctl(t, url, "health")
	if !strings.Contains(health, `"ok"`) {
		t.Fatalf("health output %q", health)
	}
	metrics := ctl(t, url, "metrics")
	if !strings.Contains(metrics, "jobs") {
		t.Fatalf("metrics output misses the jobs block:\n%s", metrics)
	}
}
