package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing url", []string{}, "-url is required"},
		{"bad endpoint", []string{"-url", "http://x", "-endpoint", "teleport"}, "unknown -endpoint"},
		{"bad model", []string{"-url", "http://x", "-model", "psychic"}, "unknown communication model"},
		{"bad backend", []string{"-url", "http://x", "-backend", "quantum"}, "unknown backend"},
		{"bad reps", []string{"-url", "http://x", "-reps", "2,zero"}, "bad -reps"},
		{"bad workers", []string{"-url", "http://x", "-workers", "0"}, "-workers must be"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), c.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %v, want containing %q", c.args, err, c.want)
			}
		})
	}
}

// runAgainst drives loadgen at an in-process service and returns the parsed
// summary. This doubles as the -race load smoke: `go test -race ./...`
// exercises concurrent clients against the full server stack.
func runAgainst(t *testing.T, extraArgs ...string) Summary {
	t.Helper()
	ts := httptest.NewServer(service.NewServer(service.Options{Workers: 2, CacheEntries: 256}).Handler())
	t.Cleanup(ts.Close)
	args := append([]string{
		"-url", ts.URL,
		"-duration", "300ms",
		"-workers", "3",
		"-reps", "2,2",
		"-instances", "8",
		"-seed", "7",
	}, extraArgs...)
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	var sum Summary
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, stdout.String())
	}
	return sum
}

func TestLoadgenClosedLoopSmoke(t *testing.T) {
	sum := runAgainst(t, "-model", "overlap")
	if sum.Requests == 0 {
		t.Fatal("no requests completed in the window")
	}
	if sum.Errors != 0 {
		t.Fatalf("%d/%d requests failed", sum.Errors, sum.Requests)
	}
	if sum.Latency.P50 <= 0 || sum.Latency.P99 < sum.Latency.P50 || sum.Latency.Max < sum.Latency.P99 {
		t.Fatalf("implausible quantiles: %+v", sum.Latency)
	}
	if sum.AchievedRPS <= 0 {
		t.Fatalf("achieved RPS %v", sum.AchievedRPS)
	}
}

func TestLoadgenBatchEndpointAndPacing(t *testing.T) {
	sum := runAgainst(t, "-endpoint", "batch", "-batch", "4", "-model", "strict", "-rps", "50")
	if sum.Requests == 0 || sum.Errors != 0 {
		t.Fatalf("batch run: %+v", sum)
	}
	// 50 rps for ~0.3 s is ~15 requests; pacing must keep us well under the
	// unthrottled rate for this tiny workload (hundreds/s locally). Allow a
	// generous ceiling to stay robust on slow CI.
	if sum.AchievedRPS > 120 {
		t.Fatalf("pacing ineffective: achieved %.1f rps with -rps 50", sum.AchievedRPS)
	}
}

func TestQuantilesExact(t *testing.T) {
	if got := quantiles(nil); got != (LatQ{}) {
		t.Fatalf("empty quantiles = %+v", got)
	}
	// 1..100 ms: p50 = index 49 -> 50ms, p95 = index 94 -> 95ms,
	// p99 = index 98 -> 99ms, max = 100ms, mean = 50.5ms.
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	got := quantiles(lats)
	want := LatQ{P50: 50, P95: 95, P99: 99, Mean: 50.5, Max: 100}
	if got != want {
		t.Fatalf("quantiles = %+v, want %+v", got, want)
	}
}

func TestLoadgenSearchEndpoint(t *testing.T) {
	sum := runAgainst(t, "-endpoint", "search", "-algo", "bnb", "-model", "overlap", "-instances", "4", "-workers", "2")
	if sum.Requests == 0 {
		t.Fatal("no search requests completed in the window")
	}
	if sum.Errors != 0 {
		t.Fatalf("%d/%d search requests failed", sum.Errors, sum.Requests)
	}
	if sum.Endpoint != "search" {
		t.Fatalf("summary endpoint %q", sum.Endpoint)
	}
}

func TestLoadgenBadAlgo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-url", "http://x", "-endpoint", "search", "-algo", "oracle"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown -algo") {
		t.Fatalf("bad -algo error = %v", err)
	}
}
