package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing url", []string{}, "-url is required"},
		{"bad endpoint", []string{"-url", "http://x", "-endpoint", "teleport"}, "unknown -endpoint"},
		{"bad model", []string{"-url", "http://x", "-model", "psychic"}, "unknown communication model"},
		{"bad backend", []string{"-url", "http://x", "-backend", "quantum"}, "unknown backend"},
		{"bad reps", []string{"-url", "http://x", "-reps", "2,zero"}, "bad -reps"},
		{"bad workers", []string{"-url", "http://x", "-workers", "0"}, "-workers must be"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), c.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error %v, want containing %q", c.args, err, c.want)
			}
		})
	}
}

// runAgainst drives loadgen at an in-process service and returns the parsed
// summary. This doubles as the -race load smoke: `go test -race ./...`
// exercises concurrent clients against the full server stack.
func runAgainst(t *testing.T, extraArgs ...string) Summary {
	t.Helper()
	ts := httptest.NewServer(service.NewServer(service.Options{Workers: 2, CacheEntries: 256}).Handler())
	t.Cleanup(ts.Close)
	args := append([]string{
		"-url", ts.URL,
		"-duration", "300ms",
		"-workers", "3",
		"-reps", "2,2",
		"-instances", "8",
		"-seed", "7",
	}, extraArgs...)
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	var sum Summary
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, stdout.String())
	}
	return sum
}

func TestLoadgenClosedLoopSmoke(t *testing.T) {
	sum := runAgainst(t, "-model", "overlap")
	if sum.Requests == 0 {
		t.Fatal("no requests completed in the window")
	}
	if sum.Errors != 0 {
		t.Fatalf("%d/%d requests failed", sum.Errors, sum.Requests)
	}
	if sum.Latency.P50 <= 0 || sum.Latency.P99 < sum.Latency.P50 || sum.Latency.Max < sum.Latency.P99 {
		t.Fatalf("implausible quantiles: %+v", sum.Latency)
	}
	if sum.AchievedRPS <= 0 {
		t.Fatalf("achieved RPS %v", sum.AchievedRPS)
	}
}

func TestLoadgenBatchEndpointAndPacing(t *testing.T) {
	sum := runAgainst(t, "-endpoint", "batch", "-batch", "4", "-model", "strict", "-rps", "50")
	if sum.Requests == 0 || sum.Errors != 0 {
		t.Fatalf("batch run: %+v", sum)
	}
	// 50 rps for ~0.3 s is ~15 requests; pacing must keep us well under the
	// unthrottled rate for this tiny workload (hundreds/s locally). Allow a
	// generous ceiling to stay robust on slow CI.
	if sum.AchievedRPS > 120 {
		t.Fatalf("pacing ineffective: achieved %.1f rps with -rps 50", sum.AchievedRPS)
	}
}

func TestQuantilesExact(t *testing.T) {
	if got := quantiles(nil); got != (LatQ{}) {
		t.Fatalf("empty quantiles = %+v", got)
	}
	// 1..100 ms: p50 = index 49 -> 50ms, p95 = index 94 -> 95ms,
	// p99 = index 98 -> 99ms, max = 100ms, mean = 50.5ms.
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	got := quantiles(lats)
	want := LatQ{P50: 50, P95: 95, P99: 99, Mean: 50.5, Max: 100}
	if got != want {
		t.Fatalf("quantiles = %+v, want %+v", got, want)
	}
}

// TestQuantilesNearestRankSmallSample pins the nearest-rank fix: on 10
// samples of 1..10 ms, p95 and p99 are the maximum (10 ms). The old
// floor-index formula answered 9 ms for both — a tail understated by a
// whole rank, which is exactly the regime (small per-run sample counts)
// short benchmark windows produce.
func TestQuantilesNearestRankSmallSample(t *testing.T) {
	lats := make([]time.Duration, 10)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	got := quantiles(lats)
	want := LatQ{P50: 5, P95: 10, P99: 10, Mean: 5.5, Max: 10}
	if got != want {
		t.Fatalf("quantiles = %+v, want %+v", got, want)
	}
	if got := quantiles([]time.Duration{3 * time.Millisecond}); got != (LatQ{P50: 3, P95: 3, P99: 3, Mean: 3, Max: 3}) {
		t.Fatalf("single-sample quantiles = %+v", got)
	}
}

func TestLoadgenSearchEndpoint(t *testing.T) {
	sum := runAgainst(t, "-endpoint", "search", "-algo", "bnb", "-model", "overlap", "-instances", "4", "-workers", "2")
	if sum.Requests == 0 {
		t.Fatal("no search requests completed in the window")
	}
	if sum.Errors != 0 {
		t.Fatalf("%d/%d search requests failed", sum.Errors, sum.Requests)
	}
	if sum.Endpoint != "search" {
		t.Fatalf("summary endpoint %q", sum.Endpoint)
	}
}

func TestLoadgenBadAlgo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-url", "http://x", "-endpoint", "search", "-algo", "oracle"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown -algo") {
		t.Fatalf("bad -algo error = %v", err)
	}
}

func TestLoadgenViaFlagErrors(t *testing.T) {
	for _, c := range []struct{ name, via, endpoint, want string }{
		{"unknown via", "teleport", "evaluate", "unknown -via"},
		{"store with search", "store", "search", "-via store applies to evaluate/batch only"},
	} {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(context.Background(), []string{"-url", "http://x", "-endpoint", c.endpoint, "-via", c.via}, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want containing %q", err, c.want)
			}
		})
	}
}

// TestLoadgenClusterMode drives a full in-process cluster — three serve
// nodes behind a cluster.Router — in -cluster mode and checks the
// summary's cluster block: every request answered, traffic attributed
// across the nodes, and a finite skew. This doubles as the router's -race
// load smoke (concurrent clients through the scatter/gather and memo
// paths).
func TestLoadgenClusterMode(t *testing.T) {
	var members []cluster.Node
	for i := 0; i < 3; i++ {
		ts := httptest.NewServer(service.NewServer(service.Options{Workers: 2, CacheEntries: 256}).Handler())
		t.Cleanup(ts.Close)
		members = append(members, cluster.Node{Name: fmt.Sprintf("n%d", i), URL: ts.URL})
	}
	rt, err := cluster.NewRouter(cluster.Options{Nodes: members})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	t.Cleanup(router.Close)

	args := []string{
		"-url", router.URL,
		"-cluster",
		"-duration", "300ms",
		"-workers", "3",
		"-reps", "2,2",
		"-instances", "24",
		"-model", "overlap",
		"-via", "store",
		"-seed", "7",
	}
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	var sum Summary
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, stdout.String())
	}
	if sum.Requests == 0 || sum.Errors != 0 {
		t.Fatalf("cluster run: %+v", sum)
	}
	if sum.Cluster == nil {
		t.Fatalf("cluster summary lacks the cluster block: %s", stdout.String())
	}
	if len(sum.Cluster.PerNodeRequests) != 3 {
		t.Fatalf("perNodeRequests covers %d nodes, want 3: %+v", len(sum.Cluster.PerNodeRequests), sum.Cluster)
	}
	var total int64
	for _, n := range sum.Cluster.PerNodeRequests {
		total += n
	}
	// With the router memo absorbing repeats, proxied requests can be far
	// fewer than client requests — but the measurement window must have
	// reached the nodes at all, and skew must be a sane ratio when it did.
	if total == 0 && sum.Cluster.RespMemoHits == 0 {
		t.Fatalf("no traffic attributed to nodes or memo: %+v", sum.Cluster)
	}
	if total > 0 && (sum.Cluster.Skew < 1 || sum.Cluster.Skew > float64(len(sum.Cluster.PerNodeRequests))) {
		t.Fatalf("implausible skew %.2f for %+v", sum.Cluster.Skew, sum.Cluster.PerNodeRequests)
	}
	if sum.Server != nil {
		t.Fatalf("cluster mode should omit the single-node server block: %+v", sum.Server)
	}
}

// TestLoadClientIdlePool is the connection-churn regression test: the
// measurement client must keep one idle connection per worker, where the
// default transport's per-host limit of 2 forced every worker past the
// second to re-dial TCP on most requests.
func TestLoadClientIdlePool(t *testing.T) {
	client := newLoadClient(16)
	tr, ok := client.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T, want *http.Transport", client.Transport)
	}
	if tr.MaxIdleConnsPerHost != 16 {
		t.Fatalf("MaxIdleConnsPerHost = %d, want the worker count 16", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < 16 {
		t.Fatalf("MaxIdleConns = %d, below the worker count", tr.MaxIdleConns)
	}
	if http.DefaultTransport.(*http.Transport).MaxIdleConnsPerHost != 0 {
		t.Fatal("newLoadClient mutated http.DefaultTransport")
	}
}

// TestLoadgenStoreMode drives the by-ID protocol end to end: instances are
// registered once, the window hammers content IDs, and the summary carries
// the server-side deltas proving the hits were served by the response memo.
func TestLoadgenStoreMode(t *testing.T) {
	// -reps 8,8,8 makes the inline instance body a few KB so the transport
	// sizes are meaningfully apart; a 2x2 population serializes to ~100
	// bytes, the same order as a content ID.
	sum := runAgainst(t, "-model", "overlap", "-via", "store", "-reps", "8,8,8")
	if sum.Requests == 0 || sum.Errors != 0 {
		t.Fatalf("store-mode run: %+v", sum)
	}
	if sum.Via != "store" {
		t.Fatalf("summary via %q", sum.Via)
	}
	// A by-ID evaluate body is the 64-hex content ID plus model and backend,
	// independent of the instance size.
	if sum.AvgRequestBytes <= 0 || sum.AvgRequestBytes > 200 {
		t.Fatalf("by-ID avgRequestBytes = %.0f, want a small ID-sized body", sum.AvgRequestBytes)
	}
	if sum.Server == nil {
		t.Fatal("store-mode summary lacks the server stats block")
	}
	if sum.Server.StoreEntries == 0 || sum.Server.RespMemoHits == 0 {
		t.Fatalf("server stats %+v: want registered entries and response-memo hits", sum.Server)
	}
	inline := runAgainst(t, "-model", "overlap", "-reps", "8,8,8")
	if inline.Via != "inline" || inline.AvgRequestBytes < 5*sum.AvgRequestBytes {
		t.Fatalf("inline avgRequestBytes %.0f vs by-ID %.0f: inline should dwarf the ID form", inline.AvgRequestBytes, sum.AvgRequestBytes)
	}
}

// TestLoadgenJobsEndpoint runs full async cycles — submit, poll, result —
// against an in-process server: every cycle must complete inside the
// window with zero errors, and the summary must attribute the run to the
// jobs endpoint.
func TestLoadgenJobsEndpoint(t *testing.T) {
	sum := runAgainst(t, "-endpoint", "jobs", "-algo", "greedy", "-model", "overlap", "-instances", "4", "-workers", "2")
	if sum.Requests == 0 {
		t.Fatal("no job cycles completed in the window")
	}
	if sum.Errors != 0 {
		t.Fatalf("%d/%d job cycles failed: %+v", sum.Errors, sum.Requests, sum.ErrorSamples)
	}
	if sum.Endpoint != "jobs" {
		t.Fatalf("summary endpoint %q", sum.Endpoint)
	}
	if len(sum.ErrorSamples) != 0 {
		t.Fatalf("clean run carries error samples: %+v", sum.ErrorSamples)
	}
}

func TestLoadgenJobsViaStoreRefused(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-url", "http://x", "-endpoint", "jobs", "-via", "store"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-via store applies to evaluate/batch only") {
		t.Fatalf("jobs -via store error = %v", err)
	}
}

// TestLoadgenErrorSamples drives the generator at a server that refuses
// everything with the unified envelope and checks the summary surfaces the
// decoded envelope — once, despite every request failing.
func TestLoadgenErrorSamples(t *testing.T) {
	refusals := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		refusals++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(service.ErrorBody{Error: service.ErrorInfo{
			Code: "unavailable", Message: "draining",
		}})
	}))
	t.Cleanup(ts.Close)
	var stdout, stderr bytes.Buffer
	args := []string{"-url", ts.URL, "-duration", "100ms", "-workers", "2", "-instances", "2", "-model", "overlap"}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sum Summary
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, stdout.String())
	}
	if sum.Errors == 0 || sum.Errors != sum.Requests {
		t.Fatalf("refusing server: %d errors of %d requests", sum.Errors, sum.Requests)
	}
	if len(sum.ErrorSamples) != 1 {
		t.Fatalf("error samples = %+v, want exactly one distinct envelope", sum.ErrorSamples)
	}
	s := sum.ErrorSamples[0]
	if s.Status != http.StatusServiceUnavailable || s.Code != "unavailable" || s.Message != "draining" || s.Body != "" {
		t.Fatalf("sample %+v: want decoded envelope, not raw body", s)
	}
}

// TestErrSinkDistinctAndCapped exercises the collector directly: repeats
// collapse, non-envelope bodies are kept raw, and the cap holds.
func TestErrSinkDistinctAndCapped(t *testing.T) {
	var s errSink
	for i := 0; i < 3; i++ {
		s.add(503, []byte(`{"error":{"code":"unavailable","message":"draining"}}`))
	}
	if len(s.samples) != 1 {
		t.Fatalf("repeat envelope kept %d samples", len(s.samples))
	}
	s.add(500, []byte("not json at all"))
	if len(s.samples) != 2 || s.samples[1].Body != "not json at all" || s.samples[1].Code != "" {
		t.Fatalf("raw-body sample wrong: %+v", s.samples)
	}
	for i := 0; i < 2*maxErrorSamples; i++ {
		s.add(400, []byte(fmt.Sprintf(`{"error":{"code":"invalid_request","message":"case %d"}}`, i)))
	}
	if len(s.samples) != maxErrorSamples {
		t.Fatalf("cap: kept %d samples, want %d", len(s.samples), maxErrorSamples)
	}
}
