// Command loadgen drives the evaluation service (cmd/serve) with a
// closed-loop workload and reports the latency distribution — the
// measurement half of the "serves heavy traffic" claim. Each worker sends a
// request, waits for the answer, and immediately sends the next (optionally
// throttled to a target aggregate request rate), so the offered load is
// bounded by the service's actual capacity rather than queueing without
// limit.
//
// Usage:
//
//	loadgen -url http://localhost:8080 [-endpoint evaluate] [-via inline]
//	        [-cluster] [-workers 4] [-rps 0] [-duration 10s] [-model strict]
//	        [-backend auto] [-reps 2,3] [-instances 64] [-batch 16]
//	        [-algo bnb] [-seed 1]
//
// -endpoint search drives /v1/search with randomly generated (pipeline,
// platform) problems; -algo picks the search algorithm (default bnb, the
// exact branch and bound — the heaviest per-request workload the service
// offers). -endpoint jobs drives the same search population through the
// async /v1/jobs surface: each closed-loop cycle submits a job, polls its
// status to a terminal state and fetches the result, so the measured
// latency is the full submit-poll-result round trip and the comparison
// against -endpoint search is the async surface's overhead.
//
// Any non-200 (for jobs, non-202/200) answer counts as an error, and the
// summary carries the first few distinct error envelopes the run saw —
// enough to tell a capacity refusal from a validation bug without
// re-running under a debugger.
//
// -via store switches evaluate/batch requests to the content-addressed
// protocol: every instance is registered once via POST /v1/instances before
// the measurement window opens, and the workload refers to instances by
// their 64-byte content IDs — the request bodies shrink ~100x and the
// server's hit path skips all instance parsing and canonical serialization.
// The summary then includes the server-side cache/store/response-memo
// deltas scraped from /metrics across the window.
//
// -cluster points the run at a cmd/router front end instead of a single
// serve node: the summary's "cluster" block then reports how the window's
// requests distributed across the nodes (and the skew of that
// distribution), plus the router's failover retries, registration replays,
// eject/rejoin transitions and response-memo traffic.
//
// -rps 0 runs unthrottled (pure closed loop: measured throughput is the
// service's capacity at this concurrency). The summary is one JSON object
// on stdout: request/error counts, achieved RPS, average request bytes and
// latency quantiles (p50/p95/p99), ready for EXPERIMENTS.md or a dashboard.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cycles"
	"repro/internal/exper"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed
		}
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// Summary is the JSON report printed on stdout.
type Summary struct {
	URL             string  `json:"url"`
	Endpoint        string  `json:"endpoint"`
	Via             string  `json:"via"`
	Workers         int     `json:"workers"`
	TargetRPS       float64 `json:"targetRps"`
	DurationSeconds float64 `json:"durationSeconds"`
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	AchievedRPS     float64 `json:"achievedRps"`
	AvgRequestBytes float64 `json:"avgRequestBytes"`
	Latency         LatQ    `json:"latencyMs"`
	// ErrorSamples holds the first few distinct error envelopes seen on
	// non-success answers (capped at maxErrorSamples; empty on a clean run).
	ErrorSamples []ErrorSample `json:"errorSamples,omitempty"`
	Server       *ServerStats  `json:"server,omitempty"`
	Cluster      *ClusterStats `json:"cluster,omitempty"`
}

// ErrorSample is one distinct error answer: the unified envelope's code and
// message when the body parses as {"error":{code,message}}, otherwise the
// raw body (truncated) so even a non-envelope failure is diagnosable.
type ErrorSample struct {
	Status  int    `json:"status"`
	Code    string `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
	Body    string `json:"body,omitempty"`
}

// maxErrorSamples caps the distinct envelopes a summary retains.
const maxErrorSamples = 5

// errSink collects the first maxErrorSamples distinct error answers across
// all workers. Distinctness is (status, code, message, body) — repeats of
// the same refusal do not crowd out a second failure mode.
type errSink struct {
	mu      sync.Mutex
	seen    map[string]bool
	samples []ErrorSample
}

func (s *errSink) add(status int, body []byte) {
	smp := ErrorSample{Status: status}
	var eb service.ErrorBody
	if err := json.Unmarshal(body, &eb); err == nil && (eb.Error.Code != "" || eb.Error.Message != "") {
		smp.Code, smp.Message = eb.Error.Code, eb.Error.Message
	} else {
		raw := string(body)
		if len(raw) > 200 {
			raw = raw[:200]
		}
		smp.Body = raw
	}
	key := fmt.Sprintf("%d\x00%s\x00%s\x00%s", smp.Status, smp.Code, smp.Message, smp.Body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen == nil {
		s.seen = make(map[string]bool)
	}
	if s.seen[key] || len(s.samples) >= maxErrorSamples {
		return
	}
	s.seen[key] = true
	s.samples = append(s.samples, smp)
}

// ClusterStats are the router-side counter deltas across the measurement
// window when -cluster points the run at a cmd/router front end: the
// per-node request distribution (and its skew — max/mean, 1.0 = perfectly
// even), failover retries, registration replays, membership transitions
// and the router response-memo traffic.
type ClusterStats struct {
	// PerNodeRequests is requests proxied to each node during the window.
	PerNodeRequests map[string]int64 `json:"perNodeRequests"`
	// Skew is max/mean over PerNodeRequests (0 when no node saw traffic).
	Skew           float64 `json:"skew"`
	Retries        int64   `json:"retries"`
	Replays        int64   `json:"replays"`
	Ejects         int64   `json:"ejects"`
	Rejoins        int64   `json:"rejoins"`
	RespMemoHits   int64   `json:"respMemoHits"`
	RespMemoMisses int64   `json:"respMemoMisses"`
}

// ServerStats are the server-side counter deltas across the measurement
// window, scraped from /metrics (omitted when the scrape fails — e.g. a
// server predating the instance store).
type ServerStats struct {
	CacheHits      int64 `json:"cacheHits"`
	CacheMisses    int64 `json:"cacheMisses"`
	StoreResolves  int64 `json:"storeResolves"`
	StoreMisses    int64 `json:"storeMisses"`
	StoreEntries   int64 `json:"storeEntries"`
	RespMemoHits   int64 `json:"respMemoHits"`
	RespMemoMisses int64 `json:"respMemoMisses"`
}

// LatQ holds latency quantiles in milliseconds.
type LatQ struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseURL := fs.String("url", "", "base URL of the service (required), e.g. http://localhost:8080")
	endpoint := fs.String("endpoint", "evaluate", "endpoint to drive: evaluate, batch, search or jobs (async submit-poll-result cycles)")
	workers := fs.Int("workers", 4, "concurrent closed-loop clients")
	rps := fs.Float64("rps", 0, "target aggregate requests/second (0 = unthrottled)")
	duration := fs.Duration("duration", 10*time.Second, "measurement window")
	modelName := fs.String("model", "strict", "communication model of the generated tasks")
	backendName := fs.String("backend", "auto", "cycle-ratio backend requested: auto, karp, howard or float-screen")
	repsFlag := fs.String("reps", "2,3", "replication vector of the generated instances, e.g. 2,3")
	instances := fs.Int("instances", 64, "distinct random instances rotated through")
	batchSize := fs.Int("batch", 16, "tasks per request for -endpoint batch")
	algo := fs.String("algo", "bnb", "search algorithm for -endpoint search: best, greedy, random, anneal, exhaustive or bnb")
	via := fs.String("via", "inline", "instance transport for evaluate/batch: inline (full JSON per request) or store (register once, refer by content ID)")
	clusterMode := fs.Bool("cluster", false, "treat -url as a cluster router (cmd/router): the summary reports the per-node request distribution, its skew and the router's failover counters instead of single-node server stats")
	seed := fs.Int64("seed", 1, "random seed for the instance population")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseURL == "" {
		return fmt.Errorf("-url is required")
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d)", *workers)
	}
	if *instances < 1 {
		return fmt.Errorf("-instances must be >= 1 (got %d)", *instances)
	}
	cm, err := model.Parse(*modelName)
	if err != nil {
		return err
	}
	backend, err := cycles.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	reps, err := parseReps(*repsFlag)
	if err != nil {
		return err
	}
	var path string
	switch *endpoint {
	case "evaluate":
		path = "/v1/evaluate"
	case "batch":
		path = "/v1/batch"
	case "search":
		path = "/v1/search"
	case "jobs":
		path = "/v1/jobs"
	default:
		return fmt.Errorf("unknown -endpoint %q (want evaluate, batch, search or jobs)", *endpoint)
	}
	switch *algo {
	case "best", "greedy", "random", "anneal", "exhaustive", "bnb":
	default:
		return fmt.Errorf("unknown -algo %q (want best, greedy, random, anneal, exhaustive or bnb)", *algo)
	}
	switch *via {
	case "inline":
	case "store":
		if *endpoint == "search" || *endpoint == "jobs" {
			return fmt.Errorf("-via store applies to evaluate/batch only (%s carries no instance)", *endpoint)
		}
	default:
		return fmt.Errorf("unknown -via %q (want inline or store)", *via)
	}

	client := newLoadClient(*workers)
	base := strings.TrimRight(*baseURL, "/")

	var payloads [][]byte
	if *via == "store" {
		// Register the population once, outside the measurement window, then
		// hammer by ID. Same seed, same generator: the tasks are identical to
		// the inline form's, only the transport differs.
		payloads, err = storePayloads(ctx, client, base, *endpoint, rand.New(rand.NewSource(*seed)), reps, *instances, *batchSize, cm, backend)
	} else {
		payloads, err = buildPayloads(*endpoint, rand.New(rand.NewSource(*seed)), reps, *instances, *batchSize, *algo, cm, backend)
	}
	if err != nil {
		return err
	}
	var payloadBytes int64
	for _, p := range payloads {
		payloadBytes += int64(len(p))
	}

	var before ServerStats
	var haveBefore bool
	var cBefore clusterCounters
	var haveCBefore bool
	if *clusterMode {
		cBefore, haveCBefore = scrapeClusterCounters(ctx, client, base)
	} else {
		before, haveBefore = scrapeServerStats(ctx, client, base)
	}

	ctx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	// The pacer turns a target aggregate rate into a shared token stream;
	// with -rps 0 the channel stays nil and workers never block on it.
	var tokens <-chan time.Time
	if *rps > 0 {
		interval := time.Duration(float64(time.Second) / *rps)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		tokens = ticker.C
	}

	url := base + path
	jobsMode := *endpoint == "jobs"
	sink := &errSink{}
	type workerStats struct {
		lats []time.Duration
		errs int
	}
	stats := make([]workerStats, *workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			st := &stats[self]
			for i := self; ; i++ {
				if tokens != nil {
					select {
					case <-tokens:
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				var ok bool
				if jobsMode {
					ok = jobCycle(ctx, client, base, payloads[i%len(payloads)], sink)
				} else {
					body, status := post(ctx, client, url, payloads[i%len(payloads)])
					ok = status == http.StatusOK
					if !ok && ctx.Err() == nil {
						sink.add(status, body)
					}
				}
				if ctx.Err() != nil {
					return // a cut-off request measures the deadline, not the service
				}
				if ok {
					st.lats = append(st.lats, time.Since(t0))
				} else {
					st.errs++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs := 0
	for _, st := range stats {
		all = append(all, st.lats...)
		errs += st.errs
	}
	sum := Summary{
		URL:             *baseURL,
		Endpoint:        *endpoint,
		Via:             *via,
		Workers:         *workers,
		TargetRPS:       *rps,
		DurationSeconds: elapsed.Seconds(),
		Requests:        len(all) + errs,
		Errors:          errs,
		AchievedRPS:     float64(len(all)) / elapsed.Seconds(),
		AvgRequestBytes: float64(payloadBytes) / float64(len(payloads)),
		Latency:         quantiles(all),
		ErrorSamples:    sink.samples,
	}
	// The measurement deadline has expired; scrape the post-window counters
	// on a fresh context.
	switch {
	case *clusterMode:
		if after, ok := scrapeClusterCounters(context.WithoutCancel(ctx), client, base); ok && haveCBefore {
			sum.Cluster = clusterDelta(cBefore, after)
		}
	default:
		if after, ok := scrapeServerStats(context.WithoutCancel(ctx), client, base); ok && haveBefore {
			sum.Server = &ServerStats{
				CacheHits:      after.CacheHits - before.CacheHits,
				CacheMisses:    after.CacheMisses - before.CacheMisses,
				StoreResolves:  after.StoreResolves - before.StoreResolves,
				StoreMisses:    after.StoreMisses - before.StoreMisses,
				StoreEntries:   after.StoreEntries,
				RespMemoHits:   after.RespMemoHits - before.RespMemoHits,
				RespMemoMisses: after.RespMemoMisses - before.RespMemoMisses,
			}
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

// newLoadClient builds the measurement client. The default transport keeps
// only 2 idle connections per host, so any run past -workers 2 tore down
// and re-dialed TCP on most requests — measuring connection setup, not the
// service. Size the idle pool to the worker count: a closed loop holds at
// most one connection per worker.
func newLoadClient(workers int) *http.Client {
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = workers
	if transport.MaxIdleConns < workers {
		transport.MaxIdleConns = workers
	}
	return &http.Client{Transport: transport}
}

// post sends one request and answers the response body and status (status
// 0 on a transport failure). Reading the body to completion lets the client
// reuse the connection.
func post(ctx context.Context, client *http.Client, url string, payload []byte) ([]byte, int) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return body, resp.StatusCode
}

// get fetches one URL with the same transport discipline as post.
func get(ctx context.Context, client *http.Client, url string) ([]byte, int) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return body, resp.StatusCode
}

// jobCycle runs one full async round trip: submit the job, poll its status
// until it reports a terminal state, fetch the result. Success is a fetched
// result of a done job; everything else (refusal, failed job, canceled job,
// transport error) counts as an error, with any error envelope recorded.
func jobCycle(ctx context.Context, client *http.Client, base string, payload []byte, sink *errSink) bool {
	body, status := post(ctx, client, base+"/v1/jobs", payload)
	if ctx.Err() != nil {
		return false
	}
	if status != http.StatusAccepted {
		sink.add(status, body)
		return false
	}
	var j service.Job
	if err := json.Unmarshal(body, &j); err != nil || j.ID == "" {
		return false
	}
	for {
		body, status = get(ctx, client, base+"/v1/jobs/"+j.ID)
		if ctx.Err() != nil {
			return false
		}
		if status != http.StatusOK {
			sink.add(status, body)
			return false
		}
		if err := json.Unmarshal(body, &j); err != nil {
			return false
		}
		switch j.State {
		case "done":
			rb, rs := get(ctx, client, base+"/v1/jobs/"+j.ID+"/result")
			if ctx.Err() != nil {
				return false
			}
			if rs != http.StatusOK {
				sink.add(rs, rb)
				return false
			}
			return true
		case "failed", "canceled":
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// parseReps parses "2,3" into a replication vector.
func parseReps(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	reps := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -reps %q: want comma-separated positive integers", s)
		}
		reps = append(reps, v)
	}
	return reps, nil
}

// buildPayloads pre-marshals the request bodies so the measurement loop
// does no JSON work of its own.
func buildPayloads(endpoint string, rng *rand.Rand, reps []int, instances, batchSize int, algo string, cm model.CommModel, backend cycles.Backend) ([][]byte, error) {
	if endpoint == "search" || endpoint == "jobs" {
		// The search population: small heterogeneous problems whose exact
		// tree (a few thousand leaves) makes every request a real solve, not
		// a cache hit. The jobs endpoint drives the identical population
		// wrapped in the async submission envelope, so a search-vs-jobs run
		// pair measures exactly the surface overhead.
		var payloads [][]byte
		for k := 0; k < instances; k++ {
			pipe := pipeline.Random(rng, 3, 50, 500)
			plat := platform.Random(rng, 5, 5, 25, 20, 200)
			sr := &service.SearchRequest{
				Pipeline: pipe,
				Platform: plat,
				Model:    cm.String(),
				Algo:     algo,
				Backend:  backend.String(),
				Seed:     int64(k),
			}
			var body any = sr
			if endpoint == "jobs" {
				body = service.JobSubmitRequest{Kind: "search", Search: sr}
			}
			b, err := json.Marshal(body)
			if err != nil {
				return nil, err
			}
			payloads = append(payloads, b)
		}
		return payloads, nil
	}
	// The instance population is the sweep's family: uniform integer times
	// in the Table 2 computation-time range [5, 15].
	insts := make([]*model.Instance, instances)
	for k := range insts {
		inst, err := exper.RandomTimedInstance(rng, reps, 5, 15)
		if err != nil {
			return nil, err
		}
		insts[k] = inst
	}
	var payloads [][]byte
	if endpoint == "evaluate" {
		for _, inst := range insts {
			b, err := json.Marshal(service.EvaluateRequest{Instance: inst, Model: cm.String(), Backend: backend.String()})
			if err != nil {
				return nil, err
			}
			payloads = append(payloads, b)
		}
		return payloads, nil
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("-batch must be >= 1 (got %d)", batchSize)
	}
	for at := 0; at < len(insts); at += batchSize {
		end := at + batchSize
		if end > len(insts) {
			end = len(insts)
		}
		req := service.BatchRequest{Backend: backend.String()}
		for _, inst := range insts[at:end] {
			req.Tasks = append(req.Tasks, service.BatchTask{Instance: inst, Model: cm.String()})
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, b)
	}
	return payloads, nil
}

// storePayloads builds the -via store workload: the same deterministic
// instance population as the inline form (same seed, same generator), each
// registered once via POST /v1/instances, with the request bodies carrying
// only the returned content IDs.
func storePayloads(ctx context.Context, client *http.Client, base, endpoint string, rng *rand.Rand, reps []int, instances, batchSize int, cm model.CommModel, backend cycles.Backend) ([][]byte, error) {
	ids := make([]string, instances)
	for k := range ids {
		inst, err := exper.RandomTimedInstance(rng, reps, 5, 15)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(service.InstanceRequest{Instance: inst})
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/instances", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("registering instance %d: %w", k, err)
		}
		var reg service.InstanceResponse
		err = json.NewDecoder(resp.Body).Decode(&reg)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || reg.ID == "" {
			return nil, fmt.Errorf("registering instance %d: status %d (decode err %v)", k, resp.StatusCode, err)
		}
		ids[k] = reg.ID
	}
	var payloads [][]byte
	if endpoint == "evaluate" {
		for _, id := range ids {
			b, err := json.Marshal(service.EvaluateRequest{InstanceID: id, Model: cm.String(), Backend: backend.String()})
			if err != nil {
				return nil, err
			}
			payloads = append(payloads, b)
		}
		return payloads, nil
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("-batch must be >= 1 (got %d)", batchSize)
	}
	for at := 0; at < len(ids); at += batchSize {
		end := at + batchSize
		if end > len(ids) {
			end = len(ids)
		}
		req := service.BatchRequest{Backend: backend.String()}
		for _, id := range ids[at:end] {
			req.Tasks = append(req.Tasks, service.BatchTask{InstanceID: id, Model: cm.String()})
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, b)
	}
	return payloads, nil
}

// scrapeServerStats pulls the cache/store/response-memo counters from
// /metrics; ok is false when the scrape fails (the summary then omits the
// server block rather than failing the run).
func scrapeServerStats(ctx context.Context, client *http.Client, base string) (ServerStats, bool) {
	var out ServerStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return out, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return out, false
	}
	defer resp.Body.Close()
	var m struct {
		Cache map[string]struct {
			Hits, Misses int64
		} `json:"cache"`
		Store struct {
			Resolves, Misses, Entries int64
		} `json:"store"`
		RespMemo *struct {
			Hits, Misses int64
		} `json:"respMemo"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&m) != nil {
		return out, false
	}
	for _, c := range m.Cache {
		out.CacheHits += c.Hits
		out.CacheMisses += c.Misses
	}
	out.StoreResolves = m.Store.Resolves
	out.StoreMisses = m.Store.Misses
	out.StoreEntries = m.Store.Entries
	if m.RespMemo != nil {
		out.RespMemoHits = m.RespMemo.Hits
		out.RespMemoMisses = m.RespMemo.Misses
	}
	return out, true
}

// clusterCounters is the raw router-side counter snapshot behind the
// ClusterStats deltas.
type clusterCounters struct {
	perNode                           map[string]int64
	retries, replays, ejects, rejoins int64
	memoHits, memoMisses              int64
}

// scrapeClusterCounters pulls the router block from a cmd/router /metrics
// body; ok is false when the target is unreachable or is not a router (a
// plain serve node has no "router" section — the summary then omits the
// cluster block rather than reporting zeros as fact).
func scrapeClusterCounters(ctx context.Context, client *http.Client, base string) (clusterCounters, bool) {
	var out clusterCounters
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return out, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return out, false
	}
	defer resp.Body.Close()
	var m struct {
		Router *struct {
			Retries  int64            `json:"retries"`
			Replays  int64            `json:"replays"`
			Ejects   int64            `json:"ejects"`
			Rejoins  int64            `json:"rejoins"`
			PerNode  map[string]int64 `json:"perNode"`
			RespMemo *struct {
				Hits   int64 `json:"hits"`
				Misses int64 `json:"misses"`
			} `json:"respMemo"`
		} `json:"router"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&m) != nil || m.Router == nil {
		return out, false
	}
	out.perNode = m.Router.PerNode
	out.retries = m.Router.Retries
	out.replays = m.Router.Replays
	out.ejects = m.Router.Ejects
	out.rejoins = m.Router.Rejoins
	if m.Router.RespMemo != nil {
		out.memoHits = m.Router.RespMemo.Hits
		out.memoMisses = m.Router.RespMemo.Misses
	}
	return out, true
}

// clusterDelta folds two router snapshots into the window's ClusterStats.
func clusterDelta(before, after clusterCounters) *ClusterStats {
	per := make(map[string]int64, len(after.perNode))
	var total, max int64
	for name, v := range after.perNode {
		d := v - before.perNode[name]
		per[name] = d
		total += d
		if d > max {
			max = d
		}
	}
	skew := 0.0
	if len(per) > 0 && total > 0 {
		skew = float64(max) * float64(len(per)) / float64(total)
	}
	return &ClusterStats{
		PerNodeRequests: per,
		Skew:            skew,
		Retries:         after.retries - before.retries,
		Replays:         after.replays - before.replays,
		Ejects:          after.ejects - before.ejects,
		Rejoins:         after.rejoins - before.rejoins,
		RespMemoHits:    after.memoHits - before.memoHits,
		RespMemoMisses:  after.memoMisses - before.memoMisses,
	}
}

// quantiles computes exact latency quantiles from the recorded samples
// using the nearest-rank definition: the smallest sample such that at
// least a q fraction of the distribution is at or below it,
// ceil(q*n)-1 after the sort. The previous floor-index formula
// (int(q*(n-1))) was biased low on small samples — the p95 of 10 samples
// answered the 9th-ranked value instead of the maximum — which understated
// exactly the tail latencies a load report exists to surface.
func quantiles(lats []time.Duration) LatQ {
	if len(lats) == 0 {
		return LatQ{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return float64(lats[i].Nanoseconds()) / 1e6
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return LatQ{
		P50:  at(0.50),
		P95:  at(0.95),
		P99:  at(0.99),
		Mean: float64(sum.Nanoseconds()) / float64(len(lats)) / 1e6,
		Max:  float64(lats[len(lats)-1].Nanoseconds()) / 1e6,
	}
}
