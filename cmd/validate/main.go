// Command validate is the repository's self-check: on random instances it
// computes the period in up to eight independent ways and verifies that
// they agree exactly:
//
//  0. the production core.Solver path under the -backend flag's engine;
//  1. Theorem 1 polynomial algorithm (overlap model only);
//  2. unfolded-TPN critical cycle via token contraction + Karp;
//  3. unfolded-TPN critical cycle via Howard policy iteration;
//  4. max-plus spectral radius of the net's recurrence matrix;
//  5. exact unrolling of the net (steady-state firing rate);
//  6. the from-first-principles operational simulator;
//  7. the float-screening sweep, whose error-bounded enclosure must
//     contain the exact period (containment, not equality: the sweep is
//     float64 by design).
//
// Any disagreement prints the offending instance and exits non-zero.
//
// Runs spread over the batch-evaluation engine's work-stealing pool
// (instances are seeded independently, so the check set is identical at any
// worker count) and Ctrl-C cancels cleanly mid-campaign.
//
// Usage:
//
//	validate [-runs 200] [-seed 1] [-maxrep 4] [-stages 4] [-quiet] [-workers 0] [-backend auto]
//
// -backend selects the cycle-ratio engine of the production solver path
// (check 0 below); the Karp and Howard cross-checks always run regardless.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/mpa"
	"repro/internal/rat"
	"repro/internal/sim"
	"repro/internal/tpn"
)

func main() {
	runs := flag.Int("runs", 200, "number of random instances")
	seed := flag.Int64("seed", 1, "base random seed")
	maxRep := flag.Int("maxrep", 4, "maximum replication per stage")
	maxStages := flag.Int("stages", 4, "maximum number of stages")
	quiet := flag.Bool("quiet", false, "only print failures and the summary")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	backendName := flag.String("backend", "auto", "cycle-ratio backend of the production solver path: auto, karp, howard or float-screen")
	flag.Parse()

	backend, err := cycles.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	if *runs < 0 {
		*runs = 0
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := engine.New(engine.Options{Workers: *workers, CacheEntries: -1, Backend: backend})

	t0 := time.Now()
	fails := make([]error, *runs) // per-run verdicts, reported in run order
	var done atomic.Int64
	err = eng.ForEach(ctx, *runs, func(k int) {
		rng := rand.New(rand.NewSource(*seed + int64(k)))
		inst := randomInstance(rng, 2+rng.Intn(*maxStages-1), *maxRep)
		for _, cm := range model.Models() {
			if cerr := check(inst, cm, backend); cerr != nil {
				fails[k] = fmt.Errorf("(%v, reps %v): %w", cm, inst.ReplicationCounts(), cerr)
				break
			}
		}
		if n := done.Add(1); !*quiet && n%50 == 0 {
			fmt.Printf("checked %d/%d instances (%v)\n", n, *runs, time.Since(t0).Round(time.Millisecond))
		}
	})
	bad := 0
	for k, ferr := range fails {
		if ferr != nil {
			bad++
			fmt.Fprintf(os.Stderr, "FAIL run %d %v\n", k, ferr)
		}
	}
	if err != nil {
		// Interrupted: the disagreements recorded so far are already printed
		// above — they are the evidence this tool exists to produce.
		fmt.Fprintf(os.Stderr, "validate: interrupted (%d disagreements among completed runs)\n", bad)
		os.Exit(130)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "validate: %d disagreements\n", bad)
		os.Exit(1)
	}
	fmt.Printf("validate: %d instances x 2 models, all engines agree (%d workers, %v)\n",
		*runs, eng.Workers(), time.Since(t0).Round(time.Millisecond))
}

func check(inst *model.Instance, cm model.CommModel, backend cycles.Backend) error {
	net, err := tpn.Build(inst, cm)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	m := inst.PathCount()

	// 2. contraction + Karp.
	crit, err := net.MaxCycleRatio()
	if err != nil {
		return fmt.Errorf("contract: %w", err)
	}
	period := crit.Ratio.DivInt(m)

	// 0. the production solver path under the selected backend: what the
	// engine's workers actually run must agree with every reference engine.
	solver := core.NewSolver()
	solver.Backend = backend
	prod, err := solver.Period(inst, cm)
	if err != nil {
		return fmt.Errorf("solver(%v): %w", backend, err)
	}
	if !prod.Period.Equal(period) {
		return fmt.Errorf("solver(%v) %v != tpn %v", backend, prod.Period, period)
	}

	// 1. polynomial algorithm (overlap only).
	if cm == model.Overlap {
		poly, err := core.PeriodOverlapPoly(inst)
		if err != nil {
			return fmt.Errorf("poly: %w", err)
		}
		if !poly.Period.Equal(period) {
			return fmt.Errorf("poly %v != tpn %v", poly.Period, period)
		}
	}

	// 3. Howard.
	how, err := net.System().MaxRatioHoward()
	if err != nil {
		return fmt.Errorf("howard: %w", err)
	}
	if !how.Ratio.Equal(crit.Ratio) {
		return fmt.Errorf("howard %v != karp %v", how.Ratio, crit.Ratio)
	}

	// 4. max-plus spectral radius.
	eig, err := mpa.CycleTime(net)
	if err != nil {
		return fmt.Errorf("mpa: %w", err)
	}
	if !eig.Equal(crit.Ratio) {
		return fmt.Errorf("mpa %v != karp %v", eig, crit.Ratio)
	}

	// 5. unrolling.
	measured, err := net.MeasuredPeriod(int(10*m)+20, int(2*m))
	if err != nil {
		return fmt.Errorf("unroll: %w", err)
	}
	if !measured.Equal(crit.Ratio) {
		return fmt.Errorf("unrolled %v != analytic %v", measured, crit.Ratio)
	}

	// 6. operational simulator: its completion times must equal the net
	// unrolling data set for data set (exact, no asymptotics involved).
	const periods = 10
	op, err := sim.RunOperational(inst, cm, periods*int(m))
	if err != nil {
		return fmt.Errorf("operational: %w", err)
	}
	start, err := net.Unroll(periods)
	if err != nil {
		return fmt.Errorf("unroll occurrences: %w", err)
	}
	lastStage := inst.NumStages() - 1
	for k := 0; k < periods; k++ {
		for r := 0; r < int(m); r++ {
			ti := net.TransitionAt(r, net.Cols-1)
			want := start[ti][k].Add(net.Transitions[ti].Time)
			ds := k*int(m) + r
			if !op.CompEnd[lastStage][ds].Equal(want) {
				return fmt.Errorf("operational completion of data set %d = %v, TPN says %v",
					ds, op.CompEnd[lastStage][ds], want)
			}
		}
	}

	// 7. float-screening sweep: the rigorous enclosure must contain the
	// exact period (the soundness property every screened search relies on).
	approx, err := solver.PeriodApprox(inst, cm)
	if err != nil {
		return fmt.Errorf("approx: %w", err)
	}
	if !approx.Contains(prod.Period) {
		return fmt.Errorf("float enclosure [%g ± %g] misses exact period %v", approx.Ratio, approx.Err, prod.Period)
	}

	// Invariant: P >= Mct always.
	if period.Less(inst.Mct(cm)) {
		return fmt.Errorf("period %v below Mct %v", period, inst.Mct(cm))
	}
	return nil
}

func randomInstance(rng *rand.Rand, n, maxRep int) *model.Instance {
	reps := make([]int, n)
	for i := range reps {
		reps[i] = 1 + rng.Intn(maxRep)
	}
	draw := func() rat.Rat { return rat.FromInt(1 + rng.Int63n(30)) }
	comp := make([][]rat.Rat, n)
	for i := range comp {
		comp[i] = make([]rat.Rat, reps[i])
		for a := range comp[i] {
			comp[i][a] = draw()
		}
	}
	comm := make([][][]rat.Rat, n-1)
	for i := range comm {
		comm[i] = make([][]rat.Rat, reps[i])
		for a := range comm[i] {
			comm[i][a] = make([]rat.Rat, reps[i+1])
			for b := range comm[i][a] {
				comm[i][a][b] = draw()
			}
		}
	}
	inst, err := model.FromTimes(comp, comm)
	if err != nil {
		panic(err)
	}
	return inst
}
