// Command table2 regenerates Table 2 of the paper: counts of experiments
// without critical resource across random instance families, for both
// communication models.
//
// Usage:
//
//	table2 [-scale 0.1] [-seed 1] [-par 0] [-backend auto]
//
// -scale shrinks per-row run counts (1 = the paper's full 5,152-run grid).
// -backend selects the cycle-ratio engine (auto, karp, howard, float-screen); every
// backend produces the identical table, only the wall time moves.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/cycles"
	"repro/internal/engine"
	"repro/internal/exper"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // usage already printed
		}
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}
}

// run executes the campaign with the given arguments. The table itself is
// the only output on stdout (progress and timing go to stderr), so the
// bytes written to stdout are deterministic for a fixed scale, seed and
// backend at any worker count — the property the golden-file test pins.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("table2", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1.0, "fraction of the paper's run counts (0 < scale <= 1)")
	seed := fs.Int64("seed", 1, "base random seed")
	par := fs.Int("par", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	backendName := fs.String("backend", "auto", "cycle-ratio backend: auto, karp, howard or float-screen")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, err := cycles.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	eng := engine.New(engine.Options{Workers: *par, Backend: backend})

	t0 := time.Now()
	results, err := exper.RunAllEngine(ctx, eng, *scale, *seed, func(rr exper.RowResult) {
		fmt.Fprintf(stderr, "done: %-8v %-45s %4d runs  nocrit=%d  (%v)\n",
			rr.Model, rr.Label, rr.Total, rr.NoCritical, time.Since(t0).Round(time.Millisecond))
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "Table 2 — numbers of experiments without critical resource")
	if err := exper.WriteTable(stdout, results); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "total wall time: %v\n", time.Since(t0).Round(time.Millisecond))
	return nil
}
