// Command table2 regenerates Table 2 of the paper: counts of experiments
// without critical resource across random instance families, for both
// communication models.
//
// Usage:
//
//	table2 [-scale 0.1] [-seed 1] [-par 0]
//
// -scale shrinks per-row run counts (1 = the paper's full 5,152-run grid).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/engine"
	"repro/internal/exper"
)

func main() {
	scale := flag.Float64("scale", 1.0, "fraction of the paper's run counts (0 < scale <= 1)")
	seed := flag.Int64("seed", 1, "base random seed")
	par := flag.Int("par", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := engine.New(engine.Options{Workers: *par})

	t0 := time.Now()
	results, err := exper.RunAllEngine(ctx, eng, *scale, *seed, func(rr exper.RowResult) {
		fmt.Fprintf(os.Stderr, "done: %-8v %-45s %4d runs  nocrit=%d  (%v)\n",
			rr.Model, rr.Label, rr.Total, rr.NoCritical, time.Since(t0).Round(time.Millisecond))
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}
	fmt.Println("Table 2 — numbers of experiments without critical resource")
	if err := exper.WriteTable(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}
	fmt.Printf("total wall time: %v\n", time.Since(t0).Round(time.Millisecond))
}
