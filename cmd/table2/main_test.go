package main

// Golden-file test: the table bytes on stdout are pinned for a scaled-down
// campaign, and every backend must reproduce them byte-identically (the
// backends are exact, so the rendered table cannot depend on the engine).
// Run with -update to regenerate testdata after an intentional change.

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestGoldenTable(t *testing.T) {
	base := []string{"-scale", "0.01", "-seed", "1", "-par", "2"}
	golden := filepath.Join("testdata", "table2-scale0.01.golden")
	for _, backend := range []string{"auto", "karp", "howard"} {
		t.Run(backend, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			args := append(append([]string(nil), base...), "-backend", backend)
			if err := run(context.Background(), args, &stdout, &stderr); err != nil {
				t.Fatalf("run %v: %v\nstderr: %s", args, err, stderr.String())
			}
			if *update && backend == "auto" {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run `go test ./cmd/table2 -update` to create)", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("backend %s: output differs from %s (rerun with -update after an intentional change)\ngot:\n%s",
					backend, golden, stdout.String())
			}
		})
	}
}
