# benchjson.awk — convert `go test -bench -benchmem` output into a JSON
# array of {name, iterations, nsPerOp, bytesPerOp, allocsPerOp} records
# (BENCH_10.json in CI) and enforce seven gates:
#
#   * allocation gate — the strict-model Evaluate benchmarks must stay at
#     or below `gate` allocs/op (the PR-2 zero-allocation refactor brought
#     them to single digits; see EXPERIMENTS.md);
#   * leaf-rate gate — BenchmarkBnBLeafRate/screened must rule out leaves
#     at >= `leafgate` times the rate of BenchmarkBnBLeafRate/exact
#     (leaves/s custom metric), or the float-screening tier has regressed
#     into pointless overhead;
#   * hit-path allocation gate — BenchmarkServeHitPath/by-id (the memoized
#     by-ID /v1/evaluate request, end to end through the handler stack)
#     must stay at or below `hitgate` allocs/op;
#   * hit-path speedup gate — BenchmarkServeHitPath/by-id must run at
#     least `speedupgate` times faster (ns/op) than the inline form of the
#     same memoized request, or the content-addressed protocol has stopped
#     paying for itself;
#   * router overhead gate — BenchmarkRouterHitPath/router (a memoized
#     by-ID hit through the cluster router, over real HTTP) must cost at
#     most `routergate` times BenchmarkRouterHitPath/direct (the same hit
#     against one node over the same transport), or fronting the cluster
#     has become more expensive than the extra hop it may add;
#   * job-poll allocation gate — BenchmarkJobSubmitPollOverhead/poll (one
#     status poll plus one result fetch of a terminal async job, through
#     the full handler stack) must stay at or below `joballocgate`
#     allocs/op, or polling an async job has grown a per-cycle cost the
#     lock-cheap progress design was built to avoid;
#   * checkpoint overhead gate — BenchmarkCheckpointOverhead/on (the same
#     deterministic bnb search with per-root checkpointing to a real
#     on-disk store) must cost at most `ckptgate` times
#     BenchmarkCheckpointOverhead/off in ns/op, or the durability
#     bookkeeping has grown onto the walker's hot path.
#
# Exits non-zero after the report if any gate is broken.
#
# Usage: awk -v gate=12 -v leafgate=5 -v hitgate=32 -v speedupgate=4 \
#            -v routergate=2 -v joballocgate=32 -v ckptgate=1.05 \
#            -f scripts/benchjson.awk bench.txt > BENCH_10.json

BEGIN {
    n = 0
    fail = 0
    if (gate == "") gate = 12
    if (leafgate == "") leafgate = 5
    if (hitgate == "") hitgate = 32
    if (speedupgate == "") speedupgate = 4
    if (routergate == "") routergate = 2
    if (joballocgate == "") joballocgate = 32
    if (ckptgate == "") ckptgate = 1.05
    exactLeafRate = ""
    screenedLeafRate = ""
    byIDNs = ""
    inlineNs = ""
    routedNs = ""
    directNs = ""
    ckptOnNs = ""
    ckptOffNs = ""
}

/^Benchmark/ && / allocs\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""; leafrate = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "leaves/s") leafrate = $i
    }
    n++
    names[n] = name
    iters[n] = $2
    nsop[n] = ns
    bop[n] = bytes
    aop[n] = allocs

    # The allocation gate: strict-model Evaluate paths (pooled free function
    # and reused solver; the fresh-solver case intentionally measures the
    # unpooled cost and is exempt).
    if (name == "BenchmarkPeriodStrict/free-function" || name == "BenchmarkPeriodStrict/reused-solver") {
        gated[n] = 1
        if (allocs + 0 > gate + 0) {
            printf "GATE FAIL: %s at %s allocs/op exceeds the gate of %s\n", name, allocs, gate > "/dev/stderr"
            fail = 1
        }
    }

    # Collect the leaf-rate pair for the screening gate.
    if (name == "BenchmarkBnBLeafRate/exact") { gated[n] = 1; exactLeafRate = leafrate }
    if (name == "BenchmarkBnBLeafRate/screened") { gated[n] = 1; screenedLeafRate = leafrate }

    # The serving hit-path gates: allocation ceiling on the by-ID form, and
    # the by-ID/inline pair for the speedup ratio.
    if (name == "BenchmarkServeHitPath/by-id") {
        gated[n] = 1
        byIDNs = ns
        if (allocs + 0 > hitgate + 0) {
            printf "GATE FAIL: %s at %s allocs/op exceeds the hit-path gate of %s\n", name, allocs, hitgate > "/dev/stderr"
            fail = 1
        }
    }
    if (name == "BenchmarkServeHitPath/inline") { gated[n] = 1; inlineNs = ns }

    # The router overhead pair: routed vs direct memoized hit over HTTP.
    if (name == "BenchmarkRouterHitPath/router") { gated[n] = 1; routedNs = ns }
    if (name == "BenchmarkRouterHitPath/direct") { gated[n] = 1; directNs = ns }

    # The async job poll path: allocation ceiling per status+result cycle.
    if (name == "BenchmarkJobSubmitPollOverhead/poll") {
        gated[n] = 1
        if (allocs + 0 > joballocgate + 0) {
            printf "GATE FAIL: %s at %s allocs/op exceeds the job-poll gate of %s\n", name, allocs, joballocgate > "/dev/stderr"
            fail = 1
        }
    }

    # The checkpoint overhead pair: the same search with persistence on/off.
    if (name == "BenchmarkCheckpointOverhead/on") { gated[n] = 1; ckptOnNs = ns }
    if (name == "BenchmarkCheckpointOverhead/off") { gated[n] = 1; ckptOffNs = ns }
}

END {
    if (n == 0) {
        print "benchjson.awk: no benchmark lines found" > "/dev/stderr"
        exit 1
    }
    if (exactLeafRate != "" || screenedLeafRate != "") {
        if (exactLeafRate == "" || screenedLeafRate == "") {
            print "GATE FAIL: BenchmarkBnBLeafRate ran only one of exact/screened" > "/dev/stderr"
            fail = 1
        } else if (exactLeafRate + 0 <= 0 || screenedLeafRate + 0 < leafgate * (exactLeafRate + 0)) {
            printf "GATE FAIL: screened leaf rate %s leaves/s is below %sx the exact rate %s leaves/s\n", \
                screenedLeafRate, leafgate, exactLeafRate > "/dev/stderr"
            fail = 1
        }
    }
    if (byIDNs != "" || inlineNs != "") {
        if (byIDNs == "" || inlineNs == "") {
            print "GATE FAIL: BenchmarkServeHitPath ran only one of by-id/inline" > "/dev/stderr"
            fail = 1
        } else if (byIDNs + 0 <= 0 || inlineNs + 0 < speedupgate * (byIDNs + 0)) {
            printf "GATE FAIL: by-ID hit path at %s ns/op is not %sx faster than the inline form at %s ns/op\n", \
                byIDNs, speedupgate, inlineNs > "/dev/stderr"
            fail = 1
        }
    }
    if (routedNs != "" || directNs != "") {
        if (routedNs == "" || directNs == "") {
            print "GATE FAIL: BenchmarkRouterHitPath ran only one of router/direct" > "/dev/stderr"
            fail = 1
        } else if (directNs + 0 <= 0 || routedNs + 0 > routergate * (directNs + 0)) {
            printf "GATE FAIL: routed hit path at %s ns/op exceeds %sx the direct hit path at %s ns/op\n", \
                routedNs, routergate, directNs > "/dev/stderr"
            fail = 1
        }
    }
    if (ckptOnNs != "" || ckptOffNs != "") {
        if (ckptOnNs == "" || ckptOffNs == "") {
            print "GATE FAIL: BenchmarkCheckpointOverhead ran only one of on/off" > "/dev/stderr"
            fail = 1
        } else if (ckptOffNs + 0 <= 0 || ckptOnNs + 0 > ckptgate * (ckptOffNs + 0)) {
            printf "GATE FAIL: checkpointed search at %s ns/op exceeds %sx the plain search at %s ns/op\n", \
                ckptOnNs, ckptgate, ckptOffNs > "/dev/stderr"
            fail = 1
        }
    }
    print "["
    for (i = 1; i <= n; i++) {
        printf "  {\"name\": \"%s\", \"iterations\": %s, \"nsPerOp\": %s, \"bytesPerOp\": %s, \"allocsPerOp\": %s, \"gated\": %s}%s\n", \
            names[i], iters[i], nsop[i], bop[i], aop[i], (gated[i] ? "true" : "false"), (i < n ? "," : "")
    }
    print "]"
    if (fail) exit 1
}
