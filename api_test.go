package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	pipe, err := NewPipeline([]int64{200, 1500, 800}, []int64{1000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	plat := UniformPlatform(6, 100, 1000)
	mapp, err := NewMapping([][]int{{0}, {1, 2, 3}, {4}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(pipe, plat, mapp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Throughput(inst, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period.Sign() <= 0 {
		t.Fatal("non-positive period")
	}
	if res.Period.Less(res.Mct) {
		t.Fatal("period below Mct")
	}
	tpn, err := ThroughputTPN(inst, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !tpn.Period.Equal(res.Period) {
		t.Fatalf("TPN %v vs poly %v", tpn.Period, res.Period)
	}
}

func TestSolverAPI(t *testing.T) {
	s := NewSolver(0)
	for _, inst := range []*Instance{ExampleA(), ExampleB(), ExampleA()} {
		for _, cm := range []CommModel{Overlap, Strict} {
			got, err := s.Throughput(inst, cm)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Throughput(inst, cm)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Period.Equal(want.Period) {
				t.Fatalf("%v: solver %v != free %v", cm, got.Period, want.Period)
			}
		}
	}
	// A capped solver refuses what it cannot unfold.
	if _, err := NewSolver(5).ThroughputTPN(ExampleA(), Strict); err == nil {
		t.Fatal("cap 5 on m=6 should fail")
	}
}

func TestExamplesExposed(t *testing.T) {
	a, err := Throughput(ExampleA(), Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if a.Period.Float64() != 189 {
		t.Errorf("Example A overlap period = %v", a.Period)
	}
	b, err := Throughput(ExampleB(), Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if b.HasCriticalResource() {
		t.Error("Example B should have no critical resource")
	}
	if got := len(CriticalResources(ExampleB(), Overlap)); got != 1 {
		t.Errorf("Example B Mct resources = %d", got)
	}
	if ExampleC().PathCount() != 10395 {
		t.Error("Example C path count wrong")
	}
}

func TestResourcesDecomposition(t *testing.T) {
	rs := Resources(ExampleA())
	if len(rs) != 7 {
		t.Fatalf("resources = %d, want 7", len(rs))
	}
	for _, r := range rs {
		if r.CexecStrict.Less(r.CexecOverlap) {
			t.Errorf("resource %s: strict Cexec below overlap", r.Name)
		}
	}
}

func TestSimulateAndRender(t *testing.T) {
	tr, err := Simulate(ExampleB(), Overlap, 6)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	res, _ := Throughput(ExampleB(), Overlap)
	period := res.Period.MulInt(tr.PathCount)
	err = RenderGantt(&b, tr, GanttOptions{From: period, To: period.MulInt(3), Width: 80, PeriodMarks: period})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "P2-out") {
		t.Error("Gantt missing P2-out row")
	}
}

func TestMappingSearchAPI(t *testing.T) {
	pipe, _ := NewPipeline([]int64{10, 400, 10}, []int64{10, 10})
	plat := UniformPlatform(6, 10, 100)
	gr, err := FindMappingGreedy(pipe, plat, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := FindMappingRandom(pipe, plat, Overlap, rand.New(rand.NewSource(1)), 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Period.Sign() <= 0 || rs.Period.Sign() <= 0 {
		t.Fatal("non-positive periods from search")
	}
}

func TestFindMappingExactAPI(t *testing.T) {
	pipe, _ := NewPipeline([]int64{10, 400, 10}, []int64{10, 10})
	plat := UniformPlatform(6, 10, 100)
	exact, err := FindMappingExact(pipe, plat, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Proven {
		t.Fatal("undeadlined exact search must prove its answer")
	}
	gr, err := FindMappingGreedy(pipe, plat, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Period.Less(exact.Period) {
		t.Fatalf("greedy %v beat the proven optimum %v", gr.Period, exact.Period)
	}
	// The engine-routed form proves the same optimum.
	eng := NewEngine(EngineOptions{Workers: 2})
	viaEngine, err := eng.SearchMappingsExact(context.Background(), pipe, plat, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !viaEngine.Period.Equal(exact.Period) || !viaEngine.Proven {
		t.Fatalf("engine-routed exact search diverged: %v vs %v", viaEngine.Period, exact.Period)
	}
}

func TestMonteCarloDynamicAPI(t *testing.T) {
	st, err := MonteCarloDynamic(ExampleB(), Overlap, Perturbation{JitterPct: 5}, 10, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 10 {
		t.Fatalf("runs = %d", st.Runs)
	}
}

func TestStarPlatformAPI(t *testing.T) {
	plat, err := StarPlatform([]int64{10, 20}, []int64{5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if plat.Bandwidths[0][1] != 3 {
		t.Errorf("star bandwidth = %d", plat.Bandwidths[0][1])
	}
}

func TestLatencyAPI(t *testing.T) {
	st, err := Latency(ExampleB(), Overlap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Min.Sign() <= 0 || st.Max.Less(st.Min) {
		t.Fatalf("bad latency stats: %+v", st)
	}
}

func TestFindMappingBestAPI(t *testing.T) {
	pipe, _ := NewPipeline([]int64{10, 400, 10}, []int64{10, 10})
	plat := UniformPlatform(6, 10, 100)
	best, err := FindMappingBest(pipe, plat, Overlap, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if best.Period.Sign() <= 0 {
		t.Fatal("non-positive period")
	}
}

func TestAnalyzeAPI(t *testing.T) {
	rep, err := Analyze(ExampleB(), Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasCriticalResource() {
		t.Fatal("Example B should have no critical resource")
	}
	if len(rep.Resources) != 7 {
		t.Fatalf("resources = %d", len(rep.Resources))
	}
}

func TestBackendAPI(t *testing.T) {
	for _, name := range []string{"auto", "karp", "howard"} {
		b, err := ParseBackend(name)
		if err != nil {
			t.Fatalf("ParseBackend(%q): %v", name, err)
		}
		if b.String() != name {
			t.Fatalf("backend %q round-tripped to %q", name, b.String())
		}
	}
	if _, err := ParseBackend("nope"); err == nil {
		t.Fatal("bogus backend accepted")
	}

	inst := ExampleA()
	want, err := Throughput(inst, Strict)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Backend{BackendAuto, BackendKarp, BackendHoward} {
		res, err := NewSolver(0).SetBackend(b).Throughput(inst, Strict)
		if err != nil {
			t.Fatalf("backend %v: %v", b, err)
		}
		if !res.Period.Equal(want.Period) {
			t.Fatalf("backend %v: period %v != %v", b, res.Period, want.Period)
		}
		eng := NewEngine(EngineOptions{Backend: b, Workers: 2})
		outs, err := eng.EvaluateBatch(context.Background(), []EvalTask{{Inst: inst, Model: Strict}})
		if err != nil || outs[0].Err != nil {
			t.Fatalf("backend %v engine: %v / %v", b, err, outs[0].Err)
		}
		if !outs[0].Result.Period.Equal(want.Period) {
			t.Fatalf("backend %v engine: period %v != %v", b, outs[0].Result.Period, want.Period)
		}
	}
}

// TestServeAndHandler covers the public service surface: NewServerHandler
// answers an ExampleA evaluation identically to Throughput, and Serve runs
// a real listener with graceful shutdown.
func TestServeAndHandler(t *testing.T) {
	h := NewServerHandler(ServerOptions{Workers: 2})
	inst := ExampleA()
	want, err := Throughput(inst, Strict)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(map[string]any{"instance": inst, "model": "strict"})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/evaluate", bytes.NewReader(payload))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("evaluate: status %d body %s", rec.Code, rec.Body)
	}
	var got struct {
		Period string `json:"period"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Period != want.Period.String() {
		t.Fatalf("service period %s != library period %s", got.Period, want.Period)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, "127.0.0.1:0", ServerOptions{Workers: 1}, func(format string, a ...any) {
			line := fmt.Sprintf(format, a...)
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.Fields(line[i+len("listening on "):])[0]
			}
		})
	}()
	select {
	case addr := <-addrCh:
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never reported its address")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after cancel", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve did not stop after cancel")
	}
}
