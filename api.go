package repro

import (
	"context"
	"io"
	"math/rand"
	"net/http"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/examplesdata"
	"repro/internal/exper"
	"repro/internal/gantt"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/rat"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sim"
)

// Re-exported core types. The implementation lives in internal packages; the
// aliases below form the supported public surface.
type (
	// Rat is an exact rational number; all periods and cycle-times are Rats.
	Rat = rat.Rat
	// Pipeline is the application: a linear chain of stages.
	Pipeline = pipeline.Pipeline
	// Platform is the heterogeneous target: speeds and link bandwidths.
	Platform = platform.Platform
	// Mapping assigns each stage its ordered replica list.
	Mapping = mapping.Mapping
	// Instance is a fully-timed (pipeline, platform, mapping) triple.
	Instance = model.Instance
	// CommModel selects Overlap or Strict communications.
	CommModel = model.CommModel
	// Result carries the computed period, Mct and metadata.
	Result = core.Result
	// Resource is the per-processor cycle-time decomposition.
	Resource = model.Resource
	// Trace is a simulated schedule prefix.
	Trace = sim.Trace
	// GanttOptions controls ASCII Gantt rendering.
	GanttOptions = gantt.Options
	// MappingResult is a mapping found by the search heuristics.
	MappingResult = sched.Result
	// ExactMappingResult is the outcome of the exact branch-and-bound
	// search: a mapping, its period, the Proven certificate and the tree
	// statistics (nodes, leaves, pruned, infeasible, frontier).
	ExactMappingResult = sched.ExactResult
	// Report is the full per-resource analysis produced by Analyze.
	Report = core.Report
	// ResourceReport is one row of a Report.
	ResourceReport = core.ResourceReport
	// Perturbation configures dynamic-platform Monte-Carlo sampling.
	Perturbation = dynamic.Perturbation
	// DynamicStats summarizes a Monte-Carlo run.
	DynamicStats = dynamic.Stats
	// EngineOptions configures the batch-evaluation engine.
	EngineOptions = engine.Options
	// EvalTask is one batch entry: an instance under a communication model.
	EvalTask = engine.Task
	// EvalOutcome is the per-task result of an engine batch.
	EvalOutcome = engine.Outcome
	// SweepPoint is one point of the runtime-vs-duplication sweep.
	SweepPoint = exper.SweepPoint
	// Backend selects the exact maximum-cycle-ratio engine (see the
	// Backend* constants). All backends return identical exact results;
	// they differ only in running time.
	Backend = cycles.Backend
	// ServerOptions configures the HTTP evaluation service (see Serve).
	ServerOptions = service.Options
	// Job is the wire status of one async job on the /v1/jobs surface:
	// deterministic ID, kind, state and live progress.
	Job = service.Job
	// JobProgress is a job's live progress block (bnb tree counters for
	// search jobs, points done/total for sweeps).
	JobProgress = service.JobProgress
	// JobSubmitRequest is the POST /v1/jobs body: a kind plus the matching
	// synchronous request payload.
	JobSubmitRequest = service.JobSubmitRequest
	// JobListResponse is the GET /v1/jobs answer.
	JobListResponse = service.JobListResponse
	// ErrorInfo is the unified error envelope's payload: a stable
	// machine-readable code plus a human-readable message.
	ErrorInfo = service.ErrorInfo
	// ErrorBody is the complete error answer, {"error": {code, message}} —
	// every non-2xx response of the service and the cluster router uses it.
	ErrorBody = service.ErrorBody
)

// Cycle-ratio backends. BackendAuto (the zero value, and the default of
// Solver and Engine) routes by token-edge share: Karp's contracted dynamic
// program where token edges are sparse and contraction shrinks the graph,
// Howard policy iteration where they are plentiful and contraction would
// degenerate — deterministically, so batch results stay bit-identical at
// any choice. BackendFloatScreen adds the float-screening tier on top of
// auto routing: batch searches (branch and bound, greedy, exhaustive) rank
// candidates with a rigorously error-bounded float64 sweep and pay exact
// arithmetic only for the ambiguous band — every returned period, mapping
// and proven flag stays bit-identical to the exact backends.
const (
	BackendAuto        = cycles.BackendAuto
	BackendKarp        = cycles.BackendKarp
	BackendHoward      = cycles.BackendHoward
	BackendFloatScreen = cycles.BackendFloatScreen
)

// ParseBackend parses "auto", "karp", "howard" or "float-screen" — the
// values the commands' -backend flags accept.
func ParseBackend(s string) (Backend, error) { return cycles.ParseBackend(s) }

// Communication models.
const (
	// Overlap is the OVERLAP ONE-PORT model (full duplex, compute overlap).
	Overlap = model.Overlap
	// Strict is the STRICT ONE-PORT model (serialized receive/compute/send).
	Strict = model.Strict
)

// NewPipeline builds an n-stage pipeline from stage sizes (FLOP) and the
// n-1 file sizes (bytes).
func NewPipeline(work []int64, fileSizes []int64) (*Pipeline, error) {
	return pipeline.New(work, fileSizes)
}

// NewPlatform builds a platform from processor speeds (FLOP/s) and the
// bandwidth matrix (bytes/s; 0 = no link).
func NewPlatform(speeds []int64, bandwidths [][]int64) (*Platform, error) {
	return platform.New(speeds, bandwidths)
}

// UniformPlatform builds a homogeneous fully-connected platform.
func UniformPlatform(n int, speed, bandwidth int64) *Platform {
	return platform.Uniform(n, speed, bandwidth)
}

// StarPlatform builds the logical platform induced by a physical star
// network: b_{u,v} = min(linkCaps[u], linkCaps[v]).
func StarPlatform(speeds, linkCaps []int64) (*Platform, error) {
	return platform.Star(speeds, linkCaps)
}

// NewMapping builds and validates a mapping (stage -> ordered replica list).
func NewMapping(replicas [][]int, numProcs int) (*Mapping, error) {
	return mapping.New(replicas, numProcs)
}

// NewInstance assembles and validates a timed instance.
func NewInstance(pipe *Pipeline, plat *Platform, mapp *Mapping) (*Instance, error) {
	return model.FromMapped(pipe, plat, mapp)
}

// InstanceFromTimes builds an instance directly from operation durations:
// comp[i][a] is the computation time of replica a of stage i, and
// comm[i][a][b] the transfer time of file F_i from replica a to replica b.
func InstanceFromTimes(comp [][]Rat, comm [][][]Rat) (*Instance, error) {
	return model.FromTimes(comp, comm)
}

// Throughput computes the exact steady-state period of the instance under
// the given model, choosing the best algorithm (Theorem 1 for Overlap, the
// unfolded timed Petri net for Strict).
func Throughput(inst *Instance, cm CommModel) (Result, error) {
	return core.Period(inst, cm)
}

// ThroughputTPN forces the general unfolded-TPN computation (both models).
func ThroughputTPN(inst *Instance, cm CommModel) (Result, error) {
	return core.PeriodTPN(inst, cm)
}

// Solver is a reusable single-threaded period-computation context: it owns
// the unfolded-net builder, the cycle-ratio system and the contraction/Karp
// workspace, so a loop evaluating many instances pays the allocations once.
// Results are bit-identical to Throughput/ThroughputTPN. A Solver is not
// safe for concurrent use — give each goroutine its own, or use Engine,
// whose workers already do.
type Solver struct {
	s *core.Solver
}

// NewSolver returns a solver with the given row cap for the unfolded-TPN
// method (0 = the default cap of 20000 rows) and the automatic cycle-ratio
// backend; use SetBackend to force one.
func NewSolver(maxRows int) *Solver {
	s := core.NewSolver()
	s.MaxRows = maxRows
	return &Solver{s: s}
}

// SetBackend selects the solver's cycle-ratio backend (BackendAuto,
// BackendKarp, BackendHoward or BackendFloatScreen) and returns the solver
// for chaining. Results are identical across backends; only the running
// time changes.
func (s *Solver) SetBackend(b Backend) *Solver {
	s.s.Backend = b
	return s
}

// Throughput computes the period on the solver's reused scratch.
func (s *Solver) Throughput(inst *Instance, cm CommModel) (Result, error) {
	return s.s.Period(inst, cm)
}

// ThroughputTPN forces the unfolded-TPN computation on the solver's reused
// scratch.
func (s *Solver) ThroughputTPN(inst *Instance, cm CommModel) (Result, error) {
	return s.s.PeriodTPN(inst, cm)
}

// Resources returns the per-processor cycle-time decomposition
// (Cin/Ccomp/Cout and the per-model Cexec); Mct is their maximum.
func Resources(inst *Instance) []Resource {
	return inst.Resources()
}

// CriticalResources returns the resources attaining Mct under the model.
func CriticalResources(inst *Instance, cm CommModel) []Resource {
	return inst.CriticalResources(cm)
}

// Analyze produces the full report: period, critical-cycle resources and
// columns, per-resource utilization/slack and per-replica stream periods.
func Analyze(inst *Instance, cm CommModel) (*Report, error) {
	return core.Analyze(inst, cm)
}

// Simulate unrolls the instance's schedule for `periods` macro-periods
// (periods × lcm(m_i) data sets) and returns the busy-interval trace.
func Simulate(inst *Instance, cm CommModel, periods int) (*Trace, error) {
	return sim.Run(inst, cm, periods)
}

// RenderGantt writes an ASCII Gantt chart of a trace (cf. Figures 7 and 12).
func RenderGantt(w io.Writer, tr *Trace, opts GanttOptions) error {
	return gantt.Render(w, tr, opts)
}

// FindMappingGreedy searches for a high-throughput mapping greedily.
func FindMappingGreedy(pipe *Pipeline, plat *Platform, cm CommModel) (MappingResult, error) {
	return sched.Greedy(pipe, plat, cm)
}

// FindMappingRandom runs randomized hill climbing with restarts.
func FindMappingRandom(pipe *Pipeline, plat *Platform, cm CommModel, rng *rand.Rand, restarts, moves int) (MappingResult, error) {
	return sched.RandomSearch(pipe, plat, cm, rng, restarts, moves)
}

// FindMappingBest runs every heuristic (greedy, random restarts, simulated
// annealing) and returns the best mapping found.
func FindMappingBest(pipe *Pipeline, plat *Platform, cm CommModel, rng *rand.Rand) (MappingResult, error) {
	return sched.BestOf(pipe, plat, cm, rng)
}

// FindMappingExact runs the exact branch-and-bound search over all
// replicated mappings (greedy warm start, admissible bounding, symmetry
// breaking within interchangeable processors). When the result's Proven
// flag is set, no replicated mapping has a smaller period — the ground
// truth the heuristics are judged against. The search is anytime: under a
// context deadline use Engine.SearchMappingsExact instead.
func FindMappingExact(pipe *Pipeline, plat *Platform, cm CommModel) (ExactMappingResult, error) {
	return sched.BranchAndBound(pipe, plat, cm)
}

// LatencyStats summarizes steady-state end-to-end data-set latency with
// arrivals throttled to the period (the latency/throughput trade-off of the
// replication literature).
type LatencyStats = sim.LatencyStats

// Latency measures per-data-set latency over a steady-state window.
func Latency(inst *Instance, cm CommModel, periods int) (*LatencyStats, error) {
	return sim.Latency(inst, cm, periods)
}

// MonteCarloDynamic evaluates the period distribution under random
// speed/bandwidth fluctuations (the paper's future-work direction).
func MonteCarloDynamic(inst *Instance, cm CommModel, pert Perturbation, runs int, seed int64, parallelism int) (DynamicStats, error) {
	return dynamic.MonteCarlo(inst, cm, pert, runs, seed, parallelism)
}

// Engine is the concurrent batch-evaluation subsystem: a fixed
// work-stealing worker pool with a shared memoization cache, behind which
// every large evaluation campaign of this repository runs. Results are
// bit-identical to the serial path (exact arithmetic, index-ordered
// output) at any worker count. An Engine is safe for concurrent use and is
// worth reusing across calls: the memo cache persists, so a mapping
// already evaluated by one search costs a lookup in the next.
type Engine struct {
	eng *engine.Engine
}

// NewEngine builds a batch-evaluation engine. The zero EngineOptions give
// a GOMAXPROCS-sized pool with the default memo cache.
func NewEngine(opts EngineOptions) *Engine {
	return &Engine{eng: engine.New(opts)}
}

// EvaluateBatch computes the period of every task on the worker pool.
// out[i] corresponds to tasks[i] regardless of worker interleaving, and
// each Result is identical to what Throughput returns for the same
// arguments. The only batch-level error is context cancellation.
func (e *Engine) EvaluateBatch(ctx context.Context, tasks []EvalTask) ([]EvalOutcome, error) {
	return e.eng.EvaluateBatch(ctx, tasks)
}

// SearchMappings runs every mapping heuristic (greedy construction,
// randomized hill climbing, simulated annealing) through the engine and
// returns the best mapping found. Candidate evaluations parallelize over
// the pool and memoize, so partitions revisited across heuristics are
// computed once.
func (e *Engine) SearchMappings(ctx context.Context, pipe *Pipeline, plat *Platform, cm CommModel, rng *rand.Rand) (MappingResult, error) {
	return sched.BestOfEngine(ctx, e.eng, pipe, plat, cm, rng)
}

// SearchMappingsExact runs the exact branch-and-bound search on the
// engine's pool with deterministic work partitioning: the result (mapping,
// period, proven flag, node counts) is bit-identical at any worker count.
// Under a context deadline the search turns anytime — the best incumbent
// found so far is returned with Proven false.
func (e *Engine) SearchMappingsExact(ctx context.Context, pipe *Pipeline, plat *Platform, cm CommModel) (ExactMappingResult, error) {
	return sched.BranchAndBoundEngine(ctx, e.eng, pipe, plat, cm)
}

// Sweep runs the runtime-vs-duplication sweep (cf. cmd/scaling) on the
// engine: each replication vector times the Theorem 1 polynomial algorithm
// against the general unfolded-TPN method. Pass exper.DefaultSweepPairs-
// style vectors, e.g. [][]int{{2, 3}, {5, 21, 27, 11}}.
func (e *Engine) Sweep(ctx context.Context, seed int64, pairs [][]int) ([]SweepPoint, error) {
	return exper.RuntimeSweepEngine(ctx, e.eng, seed, pairs)
}

// MonteCarlo runs the dynamic-platform Monte-Carlo campaign on the engine.
func (e *Engine) MonteCarlo(ctx context.Context, inst *Instance, cm CommModel, pert Perturbation, runs int, seed int64) (DynamicStats, error) {
	return dynamic.MonteCarloEngine(ctx, e.eng, inst, cm, pert, runs, seed)
}

// CacheStats returns the engine's cumulative memo-cache hits and misses.
func (e *Engine) CacheStats() (hits, misses int64) { return e.eng.CacheStats() }

// Workers returns the engine's fixed pool size.
func (e *Engine) Workers() int { return e.eng.Workers() }

// Serve runs the batched-evaluation HTTP service on addr until ctx is
// canceled, then shuts down gracefully. The service exposes /v1/instances
// (register an instance once and refer to it by content ID in evaluate and
// batch bodies), /v1/evaluate, /v1/batch, /v1/search, /v1/sweep, the async
// job surface /v1/jobs (submit long-running search/sweep work, poll
// progress, fetch results, cancel — see Job and JobSubmitRequest), /healthz
// and /metrics; every numeric
// answer is the exact rational the library computes. logf, when non-nil,
// receives one "listening on <addr>" line once the listener is bound (pass
// an addr ending in ":0" to pick a free port). See cmd/serve for the
// command-line front end, cmd/loadgen for a load driver and cmd/reproctl
// for the admin CLI.
func Serve(ctx context.Context, addr string, opts ServerOptions, logf func(format string, args ...any)) error {
	return service.Serve(ctx, addr, opts, logf)
}

// NewServerHandler returns the evaluation service's http.Handler for
// embedding into an existing server or httptest.
func NewServerHandler(opts ServerOptions) http.Handler {
	return service.NewServer(opts).Handler()
}

// ExampleA returns the paper's Example A instance (Figure 2), reconstructed
// from the published numbers: overlap period 189, strict period 1384/6.
func ExampleA() *Instance { return examplesdata.ExampleA() }

// ExampleB returns the paper's Example B instance (Figure 6): overlap-model
// period 3500/12 with no critical resource (Mct = 3100/12).
func ExampleB() *Instance { return examplesdata.ExampleB() }

// ExampleC returns an instance with the paper's Example C replication
// structure (5, 21, 27, 11): m = 10395 paths, still polynomial to evaluate.
func ExampleC() *Instance { return examplesdata.ExampleC() }
